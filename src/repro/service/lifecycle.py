"""The slot lifecycle: scheduled jobs run, finish, and free their slots.

The one-shot batch tools stop at commit; a long-running broker must also
see jobs *finish* so the reserved node-time flows back into the pool.
:class:`JobLifecycle` is that registry: windows enter on commit, a
virtual-clock sweep retires everything complete, and each retired
window's reservations return via :meth:`repro.model.SlotPool.release`,
which coalesces them with neighbouring free slots.  Retired entries are
discarded, so an indefinitely running service holds state only for jobs
actually in flight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.model.errors import SchedulingError
from repro.model.job import Job
from repro.model.slot import TIME_EPSILON
from repro.model.slotpool import SlotPool
from repro.model.window import Window
from repro.service.events import EventEmitter, EventType


@dataclass(frozen=True)
class ActiveJob:
    """A scheduled job currently occupying its window."""

    job: Job
    window: Window
    scheduled_at: float
    completes_at: float


class JobLifecycle:
    """Virtual-clock registry of running jobs."""

    def __init__(self, emitter: Optional[EventEmitter] = None) -> None:
        self._active: dict[str, ActiveJob] = {}
        self._emitter = emitter if emitter is not None else EventEmitter()

    @property
    def active_count(self) -> int:
        """Number of jobs currently occupying windows."""
        return len(self._active)

    def active_ids(self) -> set[str]:
        """Ids of every running job."""
        return set(self._active)

    def entries(self) -> list[ActiveJob]:
        """Every active entry, ordered by (window start, job id).

        The deterministic scan order the resilience layer uses to find
        windows compromised by a node preemption.
        """
        return sorted(
            self._active.values(),
            key=lambda entry: (entry.window.start, entry.job.job_id),
        )

    def get(self, job_id: str) -> Optional[ActiveJob]:
        """The active entry for ``job_id``, or ``None``."""
        return self._active.get(job_id)

    def next_completion(self) -> Optional[float]:
        """Earliest completion time among running jobs, ``None`` when idle."""
        if not self._active:
            return None
        return min(entry.completes_at for entry in self._active.values())

    def start(
        self,
        job: Job,
        window: Window,
        now: float,
        completion_factor: float = 1.0,
    ) -> ActiveJob:
        """Register a committed window as a running job.

        ``completion_factor`` scales the reserved runtime into the actual
        one (early finishes release unused reservation tails back to the
        pool at retirement).
        """
        if job.job_id in self._active:
            raise SchedulingError(f"job {job.job_id!r} is already running")
        if not 0.0 < completion_factor <= 1.0:
            raise SchedulingError(
                f"completion_factor must be in (0, 1], got {completion_factor}"
            )
        entry = ActiveJob(
            job=job,
            window=window,
            scheduled_at=now,
            completes_at=window.start + window.runtime * completion_factor,
        )
        self._active[job.job_id] = entry
        return entry

    def replace(
        self, job_id: str, window: Window, completion_factor: float = 1.0
    ) -> ActiveJob:
        """Swap a running job's window for a repaired one.

        Used by the resilience layer after an in-place repair: the start
        time is preserved by construction, but the runtime (and hence
        the completion time) may change when a substitute leg sits on a
        slower node.  ``scheduled_at`` is kept from the original entry —
        the job never left the schedule.
        """
        old = self._active.get(job_id)
        if old is None:
            raise SchedulingError(f"job {job_id!r} is not running")
        entry = ActiveJob(
            job=old.job,
            window=window,
            scheduled_at=old.scheduled_at,
            completes_at=window.start + window.runtime * completion_factor,
        )
        self._active[job_id] = entry
        return entry

    def cancel(self, job_id: str) -> ActiveJob:
        """Remove a running job *without* releasing its slots.

        The resilience layer releases the surviving legs itself (the
        revoked ones are forfeited, not free), so this only drops the
        registry entry.  Raises :class:`SchedulingError` if absent.
        """
        entry = self._active.pop(job_id, None)
        if entry is None:
            raise SchedulingError(f"job {job_id!r} is not running")
        return entry

    def retire_due(self, now: float, pool: SlotPool) -> list[ActiveJob]:
        """Retire every job complete by ``now``, releasing its slots.

        Each retired window's reservations go back into ``pool`` via
        :meth:`SlotPool.release`; retirement order is deterministic
        (completion time, then job id).  Returns the retired entries.
        """
        due = [
            entry
            for entry in self._active.values()
            if entry.completes_at <= now + TIME_EPSILON
        ]
        due.sort(key=lambda entry: (entry.completes_at, entry.job.job_id))
        for entry in due:
            pool.release(entry.window)
            del self._active[entry.job.job_id]
            self._emitter.emit(
                EventType.RETIRED,
                job_id=entry.job.job_id,
                completed_at=entry.completes_at,
                released_node_seconds=entry.window.processor_time,
            )
        return due
