"""Live resilience: slot revocation, window repair and retry policies.

The broker's answer to the paper's *non-dedicated* environment: local
jobs keep arriving on the nodes after windows are committed, so the
service must survive losing reservations it already promised.  The layer
is strictly additive — ``ServiceConfig.resilience = None`` (the default)
leaves every broker code path and trace byte-identical to before.

* :class:`RevocationInjector` — deterministic per-interval sampling of
  local-job arrivals on the nodes hosting committed legs (spawned
  ``SeedSequence`` streams, shared calibration with the offline replay).
* :class:`RecoveryPolicy` and its implementations
  (:class:`RepairPolicy`, :class:`ReplanPolicy`, :class:`AbandonPolicy`)
  — pure deciders mapping a :class:`RevocationContext` to an action.
* :class:`ResilienceManager` — executes the actions: in-place repairs
  via the fixed-start search, backoff retry buffering, forfeit/release
  accounting, REVOKED/REPAIRED/REPLANNED/ABANDONED events.
* :func:`bench_resilience` — the goodput benchmark behind
  ``repro bench-resilience`` and ``BENCH_resilience.json``.
"""

# Import order matters: config/injector/policies touch only core, model
# and execution modules; manager is the first to pull in repro.service
# submodules (which may initialise the repro.service package, which in
# turn re-imports the three modules above from this partially initialised
# package).  Keeping the leaf modules first makes every entry point —
# ``import repro.service``, ``import repro.service.resilience`` or a
# direct submodule import — resolve without a cycle.
from repro.service.resilience.config import POLICY_NAMES, ResilienceConfig
from repro.service.resilience.injector import NodePreemption, RevocationInjector
from repro.service.resilience.policies import (
    POLICIES,
    AbandonAction,
    AbandonPolicy,
    RecoveryAction,
    RecoveryPolicy,
    RepairAction,
    RepairPolicy,
    ReplanAction,
    ReplanPolicy,
    RevocationContext,
)
from repro.service.resilience.manager import ResilienceManager
from repro.service.resilience.bench import bench_resilience, goodput_by_policy

__all__ = [
    "AbandonAction",
    "AbandonPolicy",
    "bench_resilience",
    "goodput_by_policy",
    "NodePreemption",
    "POLICIES",
    "POLICY_NAMES",
    "RecoveryAction",
    "RecoveryPolicy",
    "RepairAction",
    "RepairPolicy",
    "ReplanAction",
    "ReplanPolicy",
    "ResilienceConfig",
    "ResilienceManager",
    "RevocationContext",
    "RevocationInjector",
]
