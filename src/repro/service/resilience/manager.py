"""The resilience manager: applies revocations and recovery actions.

This is the mutating half of the layer (policies only decide).  The
broker hands it every sampled :class:`NodePreemption` in arrival order;
the manager finds the committed windows whose reservations the local job
tramples, emits ``REVOKED``, asks the configured
:class:`~repro.service.resilience.policies.RecoveryPolicy` and then
executes the action against the pool, the lifecycle, the queue, the
stats block and the event stream — all under the broker lock.

Accounting contract (checked by the extended
:class:`~repro.service.tracing.TraceValidator` laws):

* a revoked leg's node-seconds are *forfeited* — never released;
* a repair adds exactly the replacements' node-seconds back to the
  job's committed total and keeps the window start and node-distinctness;
* a replan/abandon releases exactly the surviving legs' node-seconds.

Retry state lives here, not in the queue: the broker's
:class:`~repro.service.queueing.BoundedJobQueue` requires nondecreasing
enqueue times, so a backoff re-enqueue "from the future" is impossible.
Instead replanned jobs wait in a min-heap keyed by their ready time and
:meth:`release_due_retries` feeds them into the queue once the virtual
clock reaches it; :meth:`next_wakeup` exposes the earliest ready time so
the broker's clock stepping (and ``drain``) never sleeps past a retry.
"""

from __future__ import annotations

import heapq
from typing import Optional

from repro.model.job import Job
from repro.model.slot import TIME_EPSILON
from repro.model.slotpool import SlotPool
from repro.model.window import Window, WindowSlot
from repro.service.events import EventEmitter, EventType
from repro.service.lifecycle import ActiveJob, JobLifecycle
from repro.service.queueing import BoundedJobQueue
from repro.service.resilience.config import ResilienceConfig
from repro.service.resilience.injector import NodePreemption, RevocationInjector
from repro.service.resilience.policies import (
    AbandonAction,
    RepairAction,
    ReplanAction,
    RevocationContext,
)
from repro.service.stats import ServiceStats


class ResilienceManager:
    """Owns fault injection, recovery execution and retry buffering."""

    def __init__(
        self,
        config: ResilienceConfig,
        *,
        pool: SlotPool,
        lifecycle: JobLifecycle,
        queue: BoundedJobQueue,
        stats: ServiceStats,
        emitter: EventEmitter,
        assignments: dict[str, Window],
        cut_mode: str,
        completion_factor: float,
        record_assignments: bool,
        tenancy=None,
    ):
        self.config = config
        self.injector = RevocationInjector(config.build_model(), seed=config.seed)
        self.policy = config.build_policy()
        self._pool = pool
        self._lifecycle = lifecycle
        self._queue = queue
        self._stats = stats
        self._emitter = emitter
        self._assignments = assignments
        self._cut_mode = cut_mode
        self._completion_factor = completion_factor
        self._record_assignments = record_assignments
        #: Optional tenancy manager: forfeits trigger partial credit
        #: refunds, replans/abandons release the remaining escrow.
        self._tenancy = tenancy
        #: (ready_at, seq, job) — jobs waiting out their replan backoff.
        self._retry_heap: list[tuple[float, int, Job]] = []
        self._retry_seq = 0
        self._retry_ids: set[str] = set()
        #: Replans granted per job id (policy input for the retry bound).
        self._retries: dict[str, int] = {}
        #: Virtual time of the revocation a pending retry recovers from.
        self._revoked_at: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Retry buffer
    # ------------------------------------------------------------------
    @property
    def pending_retries(self) -> int:
        """Replanned jobs still waiting out their backoff."""
        return len(self._retry_heap)

    def pending_ids(self) -> set[str]:
        """Ids of jobs in the retry buffer (duplicate-submission guard)."""
        return set(self._retry_ids)

    def next_wakeup(self) -> Optional[float]:
        """Earliest retry ready time, ``None`` when the buffer is empty."""
        if not self._retry_heap:
            return None
        return self._retry_heap[0][0]

    def release_due_retries(self, now: float) -> int:
        """Move every retry whose backoff has elapsed into the queue.

        A full queue drops the job (cause ``retry_queue_full``) — the
        backoff already delayed it once, and holding it longer would let
        the buffer grow without bound under sustained overload.
        Returns the number of jobs re-enqueued.
        """
        released = 0
        while self._retry_heap and self._retry_heap[0][0] <= now + TIME_EPSILON:
            _, _, job = heapq.heappop(self._retry_heap)
            self._retry_ids.discard(job.job_id)
            if self._queue.push(job, now):
                released += 1
            else:
                self._stats.dropped += 1
                self._emitter.emit(
                    EventType.DROPPED,
                    job_id=job.job_id,
                    cause="retry_queue_full",
                    deferrals=0,
                )
                self.forget(job.job_id)
        return released

    def drain_pending(self) -> list[Job]:
        """Empty the retry buffer without re-enqueueing (shard teardown).

        Returns the waiting jobs in ready-time order and forgets their
        recovery state — the caller (a federation evacuating a dead
        shard) decides their fate and emits the events.
        """
        drained: list[Job] = []
        while self._retry_heap:
            _, _, job = heapq.heappop(self._retry_heap)
            self._retry_ids.discard(job.job_id)
            self.forget(job.job_id)
            drained.append(job)
        return drained

    def on_scheduled(self, job_id: str, now: float) -> None:
        """Note that a previously revoked job landed a new window."""
        revoked_at = self._revoked_at.pop(job_id, None)
        if revoked_at is not None:
            self._stats.retried += 1
            self._stats.recovery_latency.add(now - revoked_at)

    def forget(self, job_id: str) -> None:
        """Drop per-job recovery state once the job's fate is sealed."""
        self._retries.pop(job_id, None)
        self._revoked_at.pop(job_id, None)

    # ------------------------------------------------------------------
    # Injection
    # ------------------------------------------------------------------
    def sample_interval(self, start: float, end: float) -> list[NodePreemption]:
        """Preemptions over ``[start, end)`` on the currently active nodes."""
        nodes: set[int] = set()
        for entry in self._lifecycle.entries():
            nodes.update(entry.window.nodes())
        return self.injector.sample_interval(start, end, nodes)

    # ------------------------------------------------------------------
    # Revocation handling
    # ------------------------------------------------------------------
    def apply(self, hit: NodePreemption, now: float) -> None:
        """Process one local-job arrival at virtual time ``now``.

        Every active window with a leg on the hit node whose reservation
        span overlaps the local job's busy interval is compromised; each
        is revoked and recovered independently, in deterministic
        ``(window start, job id)`` order.
        """
        for entry in self._lifecycle.entries():
            revoked, surviving = self._partition(entry, hit)
            if revoked:
                self._recover(entry, revoked, surviving, now)

    def _partition(
        self, entry: ActiveJob, hit: NodePreemption
    ) -> tuple[tuple[WindowSlot, ...], tuple[WindowSlot, ...]]:
        """Split a window's legs into (revoked by ``hit``, surviving)."""
        revoked: list[WindowSlot] = []
        surviving: list[WindowSlot] = []
        start = entry.window.start
        for leg in entry.window.slots:
            span_end = start + leg.required_time
            if (
                leg.slot.node.node_id == hit.node_id
                and start < hit.busy_end - TIME_EPSILON
                and hit.arrival < span_end - TIME_EPSILON
            ):
                revoked.append(leg)
            else:
                surviving.append(leg)
        return tuple(revoked), tuple(surviving)

    def _recover(
        self,
        entry: ActiveJob,
        revoked: tuple[WindowSlot, ...],
        surviving: tuple[WindowSlot, ...],
        now: float,
    ) -> None:
        job = entry.job
        window = entry.window
        revoked_seconds = sum(leg.required_time for leg in revoked)
        self._stats.revocations += 1
        self._stats.legs_revoked += len(revoked)
        # Forfeits are attributed to the revoked window's owner so the
        # loss (and any credit refund) is billable per tenant.
        self._stats.record_forfeit(job.owner, revoked_seconds)
        self._emitter.emit(
            EventType.REVOKED,
            job_id=job.job_id,
            owner=job.owner,
            window_start=window.start,
            nodes=sorted(leg.slot.node.node_id for leg in revoked),
            node_seconds=revoked_seconds,
        )
        if self._tenancy is not None:
            # The revoked legs' escrowed cost is partially refunded; the
            # remainder is spent (the disruption's shared cost).
            self._tenancy.on_forfeit(
                job.job_id, sum(leg.cost for leg in revoked), self._emitter
            )

        context = RevocationContext(
            job=job,
            window=window,
            revoked=revoked,
            surviving=surviving,
            now=now,
            retries=self._retries.get(job.job_id, 0),
            pool=self._pool,
        )
        action = self.policy.decide(context)

        if isinstance(action, RepairAction):
            self._apply_repair(entry, surviving, action, now)
        elif isinstance(action, ReplanAction):
            self._apply_replan(entry, surviving, action, now)
        else:
            assert isinstance(action, AbandonAction)
            self._apply_abandon(entry, surviving, action)

    def _apply_repair(
        self,
        entry: ActiveJob,
        surviving: tuple[WindowSlot, ...],
        action: RepairAction,
        now: float,
    ) -> None:
        window = entry.window
        repaired = Window(
            start=window.start, slots=surviving + action.replacements
        )
        # Carve the substitute reservations out of the free pool; the
        # surviving legs' time was never released, so only the new legs
        # are committed.
        self._pool.commit_window(
            Window(start=window.start, slots=action.replacements),
            mode=self._cut_mode,
        )
        self._lifecycle.replace(
            entry.job.job_id, repaired, completion_factor=self._completion_factor
        )
        if self._record_assignments:
            self._assignments[entry.job.job_id] = repaired
        added_seconds = sum(leg.required_time for leg in action.replacements)
        self._stats.repaired += 1
        self._stats.recovery_latency.add(0.0)  # repaired in place, no delay
        self._emitter.emit(
            EventType.REPAIRED,
            job_id=entry.job.job_id,
            window_start=repaired.start,
            nodes=repaired.nodes(),
            node_seconds=repaired.processor_time,
            node_seconds_added=added_seconds,
            cost=repaired.total_cost,
        )

    def _release_surviving(self, surviving: tuple[WindowSlot, ...], start: float) -> float:
        """Return the surviving legs' time to the pool; revoked legs are
        forfeited (the local job owns that node-time now)."""
        if not surviving:
            return 0.0
        self._pool.release(Window(start=start, slots=surviving))
        return sum(leg.required_time for leg in surviving)

    def _apply_replan(
        self,
        entry: ActiveJob,
        surviving: tuple[WindowSlot, ...],
        action: ReplanAction,
        now: float,
    ) -> None:
        job_id = entry.job.job_id
        released = self._release_surviving(surviving, entry.window.start)
        self._lifecycle.cancel(job_id)
        self._assignments.pop(job_id, None)
        retries = self._retries.get(job_id, 0) + 1
        self._retries[job_id] = retries
        self._revoked_at[job_id] = now
        self._retry_seq += 1
        heapq.heappush(
            self._retry_heap, (action.ready_at, self._retry_seq, entry.job)
        )
        self._retry_ids.add(job_id)
        self._stats.replanned += 1
        self._emitter.emit(
            EventType.REPLANNED,
            job_id=job_id,
            released_node_seconds=released,
            retries=retries,
            ready_at=action.ready_at,
        )
        if self._tenancy is not None:
            # The window is gone without running: the rest of the escrow
            # flows back (the job will pay afresh when it lands again).
            self._tenancy.on_release(job_id, self._emitter)

    def _apply_abandon(
        self,
        entry: ActiveJob,
        surviving: tuple[WindowSlot, ...],
        action: AbandonAction,
    ) -> None:
        job_id = entry.job.job_id
        released = self._release_surviving(surviving, entry.window.start)
        self._lifecycle.cancel(job_id)
        self._assignments.pop(job_id, None)
        self._stats.abandoned += 1
        self._emitter.emit(
            EventType.ABANDONED,
            job_id=job_id,
            cause=action.cause,
            released_node_seconds=released,
        )
        if self._tenancy is not None:
            self._tenancy.on_release(job_id, self._emitter)
        self.forget(job_id)
