"""Deterministic live fault injection for the broker's virtual clock.

The offline robustness study samples a whole preemption schedule up
front and replays committed windows against it.  The broker cannot do
that: its horizon is open-ended and the set of nodes worth disturbing
(those hosting committed legs) changes as windows come and go.  The
:class:`RevocationInjector` therefore samples *per advanced interval*:
every time the broker is about to move its clock from ``t0`` to ``t1``,
the injector draws the local-job arrivals that hit the currently active
nodes inside ``[t0, t1)``.

Determinism follows the experiment engine's spawned-stream discipline:
one root :class:`numpy.random.SeedSequence` per injector, one spawned
child per sampled interval, nodes visited in sorted order.  The draws
depend only on the seed, the interval sequence and the active node sets
— never on worker counts or wall time — so resilience traces inherit the
broker's determinism contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.execution.disturbance import (
    PoissonDisturbances,
    sample_preemption_schedule,
)
from repro.model.slot import TIME_EPSILON


@dataclass(frozen=True)
class NodePreemption:
    """One sampled local-job arrival, pinned to its node."""

    node_id: int
    arrival: float
    length: float

    @property
    def busy_end(self) -> float:
        """When the local job releases the node again."""
        return self.arrival + self.length


class RevocationInjector:
    """Samples node preemptions over broker clock intervals.

    Parameters
    ----------
    model:
        The disturbance model (rate per node per time unit, local-job
        length distribution) — shared calibration with the offline
        replay via :func:`~repro.execution.paper_disturbance_model`.
    seed:
        Root of the injector's :class:`~numpy.random.SeedSequence`; each
        :meth:`sample_interval` call consumes exactly one spawned child
        (and none at all when it can prove the result is empty).
    """

    def __init__(self, model: PoissonDisturbances, seed: int = 0):
        self.model = model
        self._root = np.random.SeedSequence(seed)

    def sample_interval(
        self, start: float, end: float, node_ids: Iterable[int]
    ) -> list[NodePreemption]:
        """Local-job arrivals on ``node_ids`` within ``[start, end)``.

        Returns the arrivals sorted by ``(arrival, node_id)`` — the order
        the broker applies them in.  Empty intervals, a zero rate or an
        empty node set return ``[]`` *without consuming a spawned child*,
        so a rate-0 configuration leaves the stream untouched (the
        strict-no-op guarantee).
        """
        nodes = sorted(node_ids)
        if end <= start + TIME_EPSILON or self.model.rate == 0 or not nodes:
            return []
        (child,) = self._root.spawn(1)
        rng = np.random.default_rng(child)
        schedule = sample_preemption_schedule(
            self.model, nodes, end - start, rng, offset=start
        )
        hits = [
            NodePreemption(
                node_id=node_id, arrival=event.arrival, length=event.length
            )
            for node_id in nodes
            for event in schedule[node_id]
        ]
        hits.sort(key=lambda hit: (hit.arrival, hit.node_id))
        return hits
