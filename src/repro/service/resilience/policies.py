"""Recovery policies: what to do with a compromised committed window.

A revocation leaves the broker with a window split into *revoked* legs
(their node was claimed by a local job over the reservation's span) and
*surviving* legs.  The policy decides among three actions, in decreasing
order of preserved work:

1. :class:`RepairAction` — substitute only the revoked legs with fresh
   slots able to host the same ``[start, start + required_time)`` span,
   keeping the synchronous start, the surviving reservations and the
   job's place in the schedule.  Found via
   :func:`~repro.core.repair.find_fixed_start_replacements` within the
   budget left over by the surviving legs.
2. :class:`ReplanAction` — cancel the window, release the surviving
   legs back to the pool and re-enqueue the job after a deadline-aware
   exponential backoff, up to ``max_retries`` times.
3. :class:`AbandonAction` — give the job up (the terminal ABANDONED
   trace state), with the deciding ``cause`` recorded.

Policies are pure deciders: they inspect a :class:`RevocationContext`
and return an action; the :class:`~repro.service.resilience.manager.
ResilienceManager` applies it (pool mutation, lifecycle bookkeeping,
events, stats).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.core.repair import find_fixed_start_replacements
from repro.model.job import Job
from repro.model.slot import TIME_EPSILON
from repro.model.slotpool import SlotPool
from repro.model.window import Window, WindowSlot


@dataclass(frozen=True)
class RevocationContext:
    """Everything a policy may look at when deciding a recovery.

    ``revoked``/``surviving`` partition ``window.slots``; ``retries`` is
    the number of replans this job has already been granted; ``pool`` is
    the live free-slot pool (policies may search it, only the manager
    mutates it).
    """

    job: Job
    window: Window
    revoked: tuple[WindowSlot, ...]
    surviving: tuple[WindowSlot, ...]
    now: float
    retries: int
    pool: SlotPool


@dataclass(frozen=True)
class RepairAction:
    """Swap the revoked legs for ``replacements`` at the same start."""

    replacements: tuple[WindowSlot, ...]


@dataclass(frozen=True)
class ReplanAction:
    """Cancel the window; re-enqueue the job once ``ready_at`` passes."""

    ready_at: float


@dataclass(frozen=True)
class AbandonAction:
    """Give the job up; ``cause`` names the deciding constraint."""

    cause: str


RecoveryAction = Union[RepairAction, ReplanAction, AbandonAction]


class RecoveryPolicy:
    """Decider interface: context in, one action out.

    Stateless by contract — per-job state (retry counts, revocation
    times) lives in the manager and is passed in through the context, so
    one policy instance serves every job and policies stay trivially
    picklable/configurable.
    """

    name = "abstract"

    def decide(self, ctx: RevocationContext) -> RecoveryAction:  # pragma: no cover
        raise NotImplementedError


class AbandonPolicy(RecoveryPolicy):
    """Never recover: any revocation is terminal (the control baseline)."""

    name = "abandon"

    def decide(self, ctx: RevocationContext) -> RecoveryAction:
        return AbandonAction(cause="policy_abandon")


class ReplanPolicy(RecoveryPolicy):
    """Cancel and re-enqueue with bounded, deadline-aware backoff."""

    name = "replan"

    def __init__(
        self,
        max_retries: int = 3,
        backoff_base: float = 5.0,
        backoff_factor: float = 2.0,
    ):
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor

    def decide(self, ctx: RevocationContext) -> RecoveryAction:
        return self._replan_or_abandon(ctx)

    def _replan_or_abandon(self, ctx: RevocationContext) -> RecoveryAction:
        if ctx.retries >= self.max_retries:
            return AbandonAction(cause="max_retries")
        ready_at = ctx.now + self.backoff_base * self.backoff_factor**ctx.retries
        deadline = ctx.job.request.deadline
        if deadline is not None and ready_at >= deadline - TIME_EPSILON:
            return AbandonAction(cause="deadline")
        return ReplanAction(ready_at=ready_at)


class RepairPolicy(ReplanPolicy):
    """Repair in place when possible, otherwise degrade to replan.

    Repair is only attempted while the window has not started yet
    (``window.start >= now``): once the pool has been trimmed past the
    start, no slot can host the original span, and a partially executed
    co-allocation cannot take a cold substitute leg mid-run anyway.
    """

    name = "repair"

    def decide(self, ctx: RevocationContext) -> RecoveryAction:
        if ctx.window.start >= ctx.now - TIME_EPSILON:
            budget = ctx.job.request.effective_budget - sum(
                leg.cost for leg in ctx.surviving
            )
            replacements = find_fixed_start_replacements(
                ctx.pool,
                ctx.job.request,
                ctx.window.start,
                count=len(ctx.revoked),
                exclude_nodes=set(ctx.window.nodes()),
                budget=budget,
            )
            if replacements is not None:
                return RepairAction(replacements=tuple(replacements))
        return self._replan_or_abandon(ctx)


#: Policy registry keyed by the names ``ResilienceConfig.policy`` accepts.
POLICIES: dict[str, type[RecoveryPolicy]] = {
    "repair": RepairPolicy,
    "replan": ReplanPolicy,
    "abandon": AbandonPolicy,
}
