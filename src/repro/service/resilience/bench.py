"""Goodput benchmark of the recovery policies under live revocation.

For each (disturbance rate, policy) pair, one end-to-end broker run:
the standard generated job stream is scheduled, preemptions are injected
against committed windows, and the run is drained with the trace
validator checking the extended conservation laws.  The figure of merit
is *goodput* — node-seconds actually delivered to retired jobs per unit
of virtual time — which is exactly what repair protects: a repaired
window keeps its start and most of its reservations, a replanned one
pays the backoff and re-scheduling delay, an abandoned one forfeits the
job entirely.

Imports of the driver machinery are deferred into the function body:
``repro.service.config`` imports this package for ``ResilienceConfig``,
so a module-level import of the driver here would close an import cycle.
"""

from __future__ import annotations

from typing import Optional, Sequence

#: Defaults chosen so the 0.002 (paper-scale) rate produces enough
#: revocations for the policy ordering to be stable, while the whole
#: sweep stays a few seconds of CPU.
DEFAULT_RATES = (0.0, 0.002, 0.01)
DEFAULT_POLICIES = ("repair", "replan", "abandon")


def bench_resilience(
    jobs: int = 150,
    node_count: int = 50,
    rates: Sequence[float] = DEFAULT_RATES,
    policies: Sequence[str] = DEFAULT_POLICIES,
    seed: int = 2013,
    disturbance_seed: int = 97,
    arrival_rate: float = 2.0,
    workers: int = 1,
) -> dict[str, object]:
    """Sweep disturbance rates × recovery policies; return the payload.

    Every run uses the same job stream (``seed``) and the same injector
    seed (``disturbance_seed``), so within one rate the policies face an
    identical fault sequence and the goodput differences are pure policy
    effects.  Each run's trace is validated end to end.
    """
    from repro.core.vectorized import scan_counters
    from repro.hostinfo import host_payload
    from repro.service.config import ServiceConfig
    from repro.service.driver import TraceConfig, run_service_trace
    from repro.service.resilience.config import ResilienceConfig

    results: list[dict[str, object]] = []
    for rate in rates:
        for policy in policies:
            service = ServiceConfig(
                workers=workers,
                check_invariants=False,
                record_assignments=False,
                resilience=ResilienceConfig(
                    rate=rate, seed=disturbance_seed, policy=policy
                ),
            )
            trace = TraceConfig(
                jobs=jobs,
                rate=arrival_rate,
                node_count=node_count,
                seed=seed,
                service=service,
                validate_trace=True,
            )
            outcome = run_service_trace(trace)
            stats = outcome.service.stats
            final_time = outcome.service.now
            goodput = (
                stats.delivered_node_seconds / final_time if final_time > 0 else 0.0
            )
            results.append(
                {
                    "rate": rate,
                    "policy": policy,
                    "scheduled": stats.scheduled,
                    "retired": stats.retired,
                    "dropped": stats.dropped,
                    "revocations": stats.revocations,
                    "legs_revoked": stats.legs_revoked,
                    "repaired": stats.repaired,
                    "replanned": stats.replanned,
                    "abandoned": stats.abandoned,
                    "retried": stats.retried,
                    "forfeited_node_seconds": round(
                        stats.forfeited_node_seconds, 3
                    ),
                    "delivered_node_seconds": round(
                        stats.delivered_node_seconds, 3
                    ),
                    "final_virtual_time": round(final_time, 3),
                    "goodput": round(goodput, 4),
                    "recovery_latency_mean": round(
                        stats.recovery_latency.mean, 3
                    ),
                }
            )
    return {
        "benchmark": "service_resilience",
        "config": {
            "jobs": jobs,
            "node_count": node_count,
            "rates": list(rates),
            "policies": list(policies),
            "seed": seed,
            "disturbance_seed": disturbance_seed,
            "arrival_rate": arrival_rate,
            "workers": workers,
        },
        "host": host_payload(parallel_target=max(workers, 2)),
        "scan_kernel": dict(scan_counters),
        "results": results,
    }


def goodput_by_policy(
    payload: dict[str, object], rate: float
) -> dict[str, float]:
    """``policy -> goodput`` at one rate (acceptance-check helper)."""
    out: dict[str, float] = {}
    for row in payload["results"]:  # type: ignore[union-attr]
        if row["rate"] == rate:
            out[str(row["policy"])] = float(row["goodput"])
    return out
