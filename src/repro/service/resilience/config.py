"""Configuration of the broker's live resilience layer.

One frozen block carries everything the revocation injector and the
recovery policies need: the disturbance intensity (shared calibration
with the offline robustness study), the injector's seed, the policy name
and the replan backoff schedule.  ``ServiceConfig.resilience`` holds an
instance of this — or ``None``, in which case the whole layer is compiled
out of the broker's paths (a strict no-op, byte-identical traces).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.execution.disturbance import (
    PAPER_LOCAL_JOB_LENGTH_RANGE,
    PoissonDisturbances,
)
from repro.model.errors import ConfigurationError

#: Names accepted by :attr:`ResilienceConfig.policy`, in decreasing order
#: of effort spent on a compromised window.
POLICY_NAMES = ("repair", "replan", "abandon")


@dataclass(frozen=True)
class ResilienceConfig:
    """Parameters of the revocation/recovery subsystem.

    Parameters
    ----------
    rate:
        Expected local-job arrivals per node per virtual time unit on the
        nodes hosting committed legs.  ``0`` keeps the layer wired in but
        injects nothing (useful for A/B runs with one config object).
    length_range:
        Uniform bounds of a local job's busy time, shared with the paper
        calibration of the offline replay.
    seed:
        Root seed of the injector: every injection interval draws from
        its own spawned ``SeedSequence`` child, the same stream
        discipline as the experiment engine's per-cycle spawning.
    policy:
        Recovery policy for compromised windows: ``"repair"`` (replace
        revoked legs at the same start, falling back to replan),
        ``"replan"`` (cancel and re-queue with backoff), ``"abandon"``
        (give up immediately).
    max_retries:
        Bound on replans per job; one more revocation abandons it.
    backoff_base, backoff_factor:
        Exponential backoff of the replan re-enqueue: the ``k``-th retry
        becomes eligible ``backoff_base * backoff_factor**k`` virtual
        time units after its revocation.  A retry whose eligibility time
        already crosses the job's deadline is abandoned instead
        (deadline-aware backoff).
    """

    rate: float = 0.0
    length_range: tuple[float, float] = PAPER_LOCAL_JOB_LENGTH_RANGE
    seed: int = 0
    policy: str = "repair"
    max_retries: int = 3
    backoff_base: float = 5.0
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ConfigurationError(f"rate must be >= 0, got {self.rate}")
        low, high = self.length_range
        if low <= 0 or high < low:
            raise ConfigurationError(f"invalid length_range {self.length_range}")
        if self.policy not in POLICY_NAMES:
            raise ConfigurationError(
                f"unknown recovery policy {self.policy!r}; "
                f"expected one of {POLICY_NAMES}"
            )
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base <= 0:
            raise ConfigurationError(
                f"backoff_base must be positive, got {self.backoff_base}"
            )
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    def build_model(self) -> PoissonDisturbances:
        """The disturbance model the injector samples from."""
        return PoissonDisturbances(rate=self.rate, length_range=self.length_range)

    def build_policy(self):
        """The configured :class:`~repro.service.resilience.RecoveryPolicy`."""
        from repro.service.resilience.policies import (
            AbandonPolicy,
            RepairPolicy,
            ReplanPolicy,
        )

        if self.policy == "repair":
            return RepairPolicy(
                max_retries=self.max_retries,
                backoff_base=self.backoff_base,
                backoff_factor=self.backoff_factor,
            )
        if self.policy == "replan":
            return ReplanPolicy(
                max_retries=self.max_retries,
                backoff_base=self.backoff_base,
                backoff_factor=self.backoff_factor,
            )
        return AbandonPolicy()
