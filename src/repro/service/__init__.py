"""On-line broker service: streaming intake over the batch-cycle kernel.

The service layer turns the one-shot reproduction tooling into a
long-running component: admission-controlled streaming submissions, a
bounded queue coalesced into scheduling cycles (size-or-deadline
batching), parallel phase-one window search over pool snapshots, locked
commits onto a shared :class:`~repro.model.SlotPool`, and a virtual-clock
slot lifecycle that returns finished jobs' reservations to the pool.
See ``docs/architecture.md`` ("Service layer").
"""

from repro.service.admission import (
    AdmissionController,
    AdmissionDecision,
    RejectionReason,
    cheapest_feasible_cost,
)
from repro.service.broker import BrokerService
from repro.service.config import ServiceConfig
from repro.service.driver import (
    TraceConfig,
    TraceResult,
    bench_service,
    build_service,
    run_service_trace,
)
from repro.service.events import (
    CollectingSink,
    Event,
    EventEmitter,
    EventSink,
    EventType,
    JsonlSink,
    RingBufferSink,
    deterministic_trace,
    load_trace,
)
from repro.service.lifecycle import ActiveJob, JobLifecycle
from repro.service.parallel import parallel_find_alternatives
from repro.service.queueing import BoundedJobQueue, CycleTrigger, QueuedJob
# Resilience names are imported from the subpackage's leaf modules, not
# from the subpackage itself: when an import chain *starts* inside
# repro.service.resilience (whose manager module initialises this
# package), the subpackage is still partially initialised here, but its
# config/injector/policies modules are already complete.
# ResilienceManager and bench_resilience live in repro.service.resilience.
from repro.service.resilience.config import POLICY_NAMES, ResilienceConfig
from repro.service.resilience.injector import NodePreemption, RevocationInjector
from repro.service.resilience.policies import (
    AbandonPolicy,
    RecoveryPolicy,
    RepairPolicy,
    ReplanPolicy,
    RevocationContext,
)
from repro.service.signals import graceful_interrupt
from repro.service.stats import (
    LatencyTracker,
    ServiceStats,
    percentile,
    percentile_of_sorted,
)
from repro.service.tracing import (
    CreditReplay,
    TraceInvariantError,
    TraceValidator,
    validate_trace_file,
)

__all__ = [
    "AbandonPolicy",
    "ActiveJob",
    "AdmissionController",
    "AdmissionDecision",
    "bench_service",
    "BoundedJobQueue",
    "BrokerService",
    "build_service",
    "cheapest_feasible_cost",
    "CollectingSink",
    "CreditReplay",
    "CycleTrigger",
    "deterministic_trace",
    "Event",
    "EventEmitter",
    "EventSink",
    "EventType",
    "graceful_interrupt",
    "JobLifecycle",
    "JsonlSink",
    "LatencyTracker",
    "load_trace",
    "NodePreemption",
    "parallel_find_alternatives",
    "percentile",
    "percentile_of_sorted",
    "POLICY_NAMES",
    "QueuedJob",
    "RecoveryPolicy",
    "RejectionReason",
    "RepairPolicy",
    "ReplanPolicy",
    "ResilienceConfig",
    "RevocationContext",
    "RevocationInjector",
    "RingBufferSink",
    "run_service_trace",
    "ServiceConfig",
    "ServiceStats",
    "TraceConfig",
    "TraceInvariantError",
    "TraceResult",
    "TraceValidator",
    "validate_trace_file",
]
