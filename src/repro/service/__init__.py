"""On-line broker service: streaming intake over the batch-cycle kernel.

The service layer turns the one-shot reproduction tooling into a
long-running component: admission-controlled streaming submissions, a
bounded queue coalesced into scheduling cycles (size-or-deadline
batching), parallel phase-one window search over pool snapshots, locked
commits onto a shared :class:`~repro.model.SlotPool`, and a virtual-clock
slot lifecycle that returns finished jobs' reservations to the pool.
See ``docs/architecture.md`` ("Service layer").
"""

from repro.service.admission import (
    AdmissionController,
    AdmissionDecision,
    RejectionReason,
    cheapest_feasible_cost,
)
from repro.service.broker import BrokerService
from repro.service.config import ServiceConfig
from repro.service.driver import (
    TraceConfig,
    TraceResult,
    bench_service,
    build_service,
    run_service_trace,
)
from repro.service.lifecycle import ActiveJob, JobLifecycle
from repro.service.parallel import parallel_find_alternatives
from repro.service.queueing import BoundedJobQueue, CycleTrigger, QueuedJob
from repro.service.stats import LatencyTracker, ServiceStats, percentile

__all__ = [
    "ActiveJob",
    "AdmissionController",
    "AdmissionDecision",
    "bench_service",
    "BoundedJobQueue",
    "BrokerService",
    "build_service",
    "cheapest_feasible_cost",
    "CycleTrigger",
    "JobLifecycle",
    "LatencyTracker",
    "parallel_find_alternatives",
    "percentile",
    "QueuedJob",
    "RejectionReason",
    "run_service_trace",
    "ServiceConfig",
    "ServiceStats",
    "TraceConfig",
    "TraceResult",
]
