"""Service-level counters and latency tracking.

One :class:`ServiceStats` block per broker instance, updated under the
broker's lock, snapshotted for the CLI and the throughput benchmark.
Latency percentiles come from bounded samples so an indefinitely running
service keeps O(1) memory: :class:`LatencyTracker` keeps a sliding
window (recent behaviour), :class:`ReservoirSampler` a uniform sample of
the *whole* stream (soak-run distributions) — both under a fixed cap.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Optional


def percentile_of_sorted(ordered: list[float], q: float) -> float:
    """The ``q``-quantile of an already *sorted* sample list.

    The kernel shared by :func:`percentile` and the multi-quantile path:
    callers that need several quantiles sort once and query this
    repeatedly instead of paying an O(n log n) copy-and-sort per call.
    """
    if not ordered:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    position = q * (len(ordered) - 1)
    below = int(position)
    above = min(below + 1, len(ordered) - 1)
    fraction = position - below
    return ordered[below] * (1.0 - fraction) + ordered[above] * fraction


def percentile(samples: list[float], q: float) -> float:
    """The ``q``-quantile (``0 <= q <= 1``) by linear interpolation."""
    return percentile_of_sorted(sorted(samples), q)


class LatencyTracker:
    """Bounded-window latency aggregator (mean over all, percentiles over
    the most recent ``max_samples`` observations)."""

    def __init__(self, max_samples: int = 4096):
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self._window: deque[float] = deque(maxlen=max_samples)
        self.count = 0
        self.total = 0.0

    def add(self, seconds: float) -> None:
        """Record one latency sample."""
        self._window.append(seconds)
        self.count += 1
        self.total += seconds

    @property
    def mean(self) -> float:
        """Mean over every sample ever recorded."""
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def quantile(self, q: float) -> float:
        """Windowed quantile (most recent samples)."""
        return percentile(list(self._window), q)

    def quantiles(self, *qs: float) -> tuple[float, ...]:
        """Several windowed quantiles from one sort of the window.

        ``snapshot()`` reads p50 and p95 together; sorting the window
        once and interpolating both beats re-sorting per quantile.
        """
        ordered = sorted(self._window)
        return tuple(percentile_of_sorted(ordered, q) for q in qs)

    @property
    def p50(self) -> float:
        """Windowed median latency."""
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        """Windowed 95th-percentile latency."""
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        """Windowed 99th-percentile latency."""
        return self.quantile(0.99)


class ReservoirSampler:
    """Fixed-capacity uniform sample of an unbounded observation stream.

    Vitter's Algorithm R with a seeded PRNG: the first ``capacity``
    observations fill the reservoir, after which observation ``i`` (1-
    based) replaces a uniformly chosen resident with probability
    ``capacity / i``.  Every prefix of the stream is therefore sampled
    uniformly, so quantiles over the reservoir estimate quantiles over
    the *whole* stream — the complement of :class:`LatencyTracker`'s
    sliding window, which deliberately forgets everything old.  Soak
    benchmarks use this for run-wide distributions under a fixed memory
    cap; the seed makes replays reproducible.
    """

    def __init__(self, capacity: int = 4096, seed: int = 0):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._samples: list[float] = []
        self._rng = random.Random(seed)
        self.count = 0
        self.total = 0.0

    def __len__(self) -> int:
        return len(self._samples)

    def add(self, value: float) -> None:
        """Record one observation (O(1), bounded memory)."""
        self.count += 1
        self.total += value
        if len(self._samples) < self.capacity:
            self._samples.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.capacity:
                self._samples[slot] = value

    @property
    def mean(self) -> float:
        """Exact mean over every observation ever recorded."""
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile of the full stream."""
        return percentile(self._samples, q)

    def quantiles(self, *qs: float) -> tuple[float, ...]:
        """Several stream quantiles from one sort of the reservoir."""
        ordered = sorted(self._samples)
        return tuple(percentile_of_sorted(ordered, q) for q in qs)


@dataclass
class ServiceStats:
    """Counters describing everything a broker service has done so far.

    ``submitted = admitted + rejected``; every admitted job eventually
    lands in exactly one of ``scheduled`` (then ``retired`` once finished)
    or ``dropped``; ``deferred`` counts deferral *events* (a job deferred
    twice contributes two).  With fault injection enabled a scheduled job
    may additionally be ``replanned`` (re-queued, so it is counted under
    ``scheduled`` again when it lands) or ``abandoned`` (terminal); the
    conservation law becomes ``admitted = (scheduled - replanned) +
    dropped + abandoned + pending``.
    """

    submitted: int = 0
    admitted: int = 0
    rejected: int = 0
    rejected_by_reason: dict[str, int] = field(default_factory=dict)
    scheduled: int = 0
    deferred: int = 0
    dropped: int = 0
    retired: int = 0
    cycles: int = 0
    queue_depth: int = 0
    active_jobs: int = 0
    windows_found: int = 0
    search_seconds: float = 0.0
    #: Phase-1 request-class grouping: jobs that entered a cycle's
    #: search vs. the distinct request classes actually searched.  The
    #: difference is the per-cycle work the class grouping saved; unlike
    #: the process-wide ``scan_counters`` these are per broker.
    phase1_jobs: int = 0
    phase1_classes: int = 0
    #: Slots appended by the rolling-horizon source (0 without one).
    slots_published: int = 0
    cycle_latency: LatencyTracker = field(default_factory=LatencyTracker)
    # --- resilience layer (all zero unless fault injection is enabled) ---
    revocations: int = 0
    legs_revoked: int = 0
    repaired: int = 0
    replanned: int = 0
    abandoned: int = 0
    retried: int = 0
    forfeited_node_seconds: float = 0.0
    #: Forfeited node-seconds attributed to each revoked window's owner —
    #: what makes credit refunds (and blame) attributable per tenant.
    forfeited_by_owner: dict[str, float] = field(default_factory=dict)
    delivered_node_seconds: float = 0.0
    recovery_latency: LatencyTracker = field(default_factory=LatencyTracker)

    def record_rejection(self, reason: str) -> None:
        """Count one rejected submission under its reason."""
        self.rejected += 1
        self.rejected_by_reason[reason] = self.rejected_by_reason.get(reason, 0) + 1

    def record_forfeit(self, owner: str, node_seconds: float) -> None:
        """Attribute one revocation's forfeited node-seconds to its owner."""
        self.forfeited_node_seconds += node_seconds
        self.forfeited_by_owner[owner] = (
            self.forfeited_by_owner.get(owner, 0.0) + node_seconds
        )

    @property
    def windows_per_second(self) -> float:
        """Phase-one throughput: alternatives found per search second."""
        if self.search_seconds <= 0.0:
            return 0.0
        return self.windows_found / self.search_seconds

    def snapshot(self, elapsed_seconds: Optional[float] = None) -> dict[str, object]:
        """A JSON-friendly view of the counters (CLI / benchmark output).

        ``jobs_per_second`` is *offered* load (submissions over wall
        time); ``scheduled_per_second`` is useful throughput.  They
        diverge exactly when admission rejects or cycles drop jobs, so
        both are reported — quoting only the former inflates throughput
        under heavy rejection.

        ``scan_kernel`` surfaces the vectorized kernel's dispatch
        telemetry (:data:`repro.core.vectorized.scan_counters`) so soak
        runs and federation clients can assert the hot path was actually
        served by the vector kernel rather than a silent object-loop
        fallback.  The counters are process-wide (one module-level
        dispatch table), not per broker — brokers sharing a process
        share them.
        """
        from repro.core.vectorized import scan_counters

        latency_p50, latency_p95, latency_p99 = self.cycle_latency.quantiles(
            0.50, 0.95, 0.99
        )
        payload: dict[str, object] = {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "rejected_by_reason": dict(self.rejected_by_reason),
            "scheduled": self.scheduled,
            "deferred": self.deferred,
            "dropped": self.dropped,
            "retired": self.retired,
            "cycles": self.cycles,
            "queue_depth": self.queue_depth,
            "active_jobs": self.active_jobs,
            "windows_found": self.windows_found,
            "windows_per_second": round(self.windows_per_second, 1),
            "slots_published": self.slots_published,
            "phase1_grouping": {
                "jobs": self.phase1_jobs,
                "classes": self.phase1_classes,
                "shared": self.phase1_jobs - self.phase1_classes,
            },
            "scan_kernel": dict(scan_counters),
            "cycle_latency_ms": {
                "mean": round(self.cycle_latency.mean * 1e3, 3),
                "p50": round(latency_p50 * 1e3, 3),
                "p95": round(latency_p95 * 1e3, 3),
                "p99": round(latency_p99 * 1e3, 3),
            },
            "delivered_node_seconds": round(self.delivered_node_seconds, 6),
            "resilience": {
                "revocations": self.revocations,
                "legs_revoked": self.legs_revoked,
                "repaired": self.repaired,
                "replanned": self.replanned,
                "abandoned": self.abandoned,
                "retried": self.retried,
                "forfeited_node_seconds": round(self.forfeited_node_seconds, 6),
                "forfeited_by_owner": {
                    owner: round(seconds, 6)
                    for owner, seconds in sorted(self.forfeited_by_owner.items())
                },
                "recovery_latency_mean": round(self.recovery_latency.mean, 6),
            },
        }
        if elapsed_seconds is not None and elapsed_seconds > 0:
            payload["jobs_per_second"] = round(self.submitted / elapsed_seconds, 1)
            payload["scheduled_per_second"] = round(
                self.scheduled / elapsed_seconds, 1
            )
        return payload
