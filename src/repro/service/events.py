"""The broker's structured event stream: what happened to every job.

The aggregate counters of :class:`~repro.service.ServiceStats` say *how
many* jobs were scheduled or dropped; this module records *which* job,
*when* (virtual time) and *why*.  Every state transition in the broker —
submission, admission, queueing, cycle boundaries, scheduling, deferral,
dropping, retirement — emits one typed :class:`Event` through an
:class:`EventEmitter` into pluggable sinks:

* :class:`RingBufferSink` — the last ``capacity`` events in O(1) memory,
  for live introspection of an indefinitely running service;
* :class:`JsonlSink` — one JSON object per line, the archival trace
  format consumed by :class:`~repro.service.tracing.TraceValidator` and
  written by ``repro serve --trace PATH``;
* :class:`CollectingSink` — an unbounded in-memory list for tests;
* :class:`~repro.service.tracing.TraceValidator` itself, which checks
  conservation invariants as the events stream past.

Determinism contract: every field of every event is a pure function of
the submitted jobs, their virtual times and the configuration — except
fields whose names start with :data:`WALL_CLOCK_PREFIX`, which carry
measured wall-clock timings.  Stripping those (``deterministic_dict``)
must leave traces byte-identical across worker counts, the same
invariance PR 1 established for assignments.
"""

from __future__ import annotations

import enum
import json
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from repro.model.errors import ConfigurationError

#: Field-name prefix marking measured wall-clock values (phase timings),
#: the only event content allowed to differ between identically seeded
#: runs.  Everything else is deterministic.
WALL_CLOCK_PREFIX = "wall_"

#: Keys of the event envelope itself; extra fields must not shadow them.
RESERVED_KEYS = frozenset({"seq", "type", "time", "job_id"})


class EventType(enum.Enum):
    """Everything that can happen to a job (or a cycle) in the broker."""

    SUBMITTED = "submitted"  #: a job was offered to the service
    ADMITTED = "admitted"  #: admission control accepted it
    REJECTED = "rejected"  #: admission control turned it away (``reason``)
    QUEUED = "queued"  #: it entered the bounded queue (``deferrals, depth``)
    CYCLE_START = "cycle_start"  #: a scheduling cycle began (``cycle``)
    CYCLE_END = "cycle_end"  #: ... and ended (batch size, phase timings)
    SCHEDULED = "scheduled"  #: a window was committed (window summary)
    DEFERRED = "deferred"  #: unscheduled this cycle, re-queued
    DROPPED = "dropped"  #: gave up on the job (``cause``)
    RETIRED = "retired"  #: it finished; slots released (node-seconds)
    REVOKED = "revoked"  #: a local job preempted committed legs (``nodes``)
    REPAIRED = "repaired"  #: revoked legs replaced at the same start time
    REPLANNED = "replanned"  #: window cancelled, job re-queued with backoff
    ABANDONED = "abandoned"  #: recovery gave up (budget/deadline/retries)
    # --- tenancy / credit events (only emitted with ``ServiceConfig.
    # tenancy`` enabled; ``balance`` is the tenant's post-operation
    # balance, which the TraceValidator replays for conservation) ---
    CREDIT_DEBITED = "credit_debited"  #: escrow charged at commit (``amount``)
    CREDIT_REFUNDED = "credit_refunded"  #: escrow returned (``kind``)
    INSUFFICIENT_CREDIT = "insufficient_credit"  #: tenant could not pay
    # --- federation-level events (intake tier, never emitted by a broker;
    # shard-broker events in a federation trace instead carry a
    # ``shard_id`` payload field) ---
    ROUTED = "routed"  #: the intake tier placed a job on a shard (``shard``)
    COALLOCATED = "coallocated"  #: a window was composed across shards
    SHARD_LOST = "shard_lost"  #: a shard died; its in-flight jobs evacuated


@dataclass(frozen=True)
class Event:
    """One structured trace record.

    ``time`` is *virtual* time (the broker clock); ``seq`` is a per-run
    monotone sequence number that orders simultaneous events.  ``fields``
    carries the per-type payload (rejection reason, window summary,
    phase timings, ...), flattened next to the envelope in the JSON form.
    """

    seq: int
    type: EventType
    time: float
    job_id: Optional[str] = None
    fields: dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        """The flat JSON-friendly form (payload merged into the envelope)."""
        payload: dict[str, object] = {
            "seq": self.seq,
            "type": self.type.value,
            "time": self.time,
        }
        if self.job_id is not None:
            payload["job_id"] = self.job_id
        payload.update(self.fields)
        return payload

    def deterministic_dict(self) -> dict[str, object]:
        """:meth:`to_dict` minus wall-clock fields — the comparable part.

        Two identically seeded runs must agree on this view exactly,
        whatever their worker counts.
        """
        return {
            key: value
            for key, value in self.to_dict().items()
            if not key.startswith(WALL_CLOCK_PREFIX)
        }

    def to_json(self) -> str:
        """One canonical JSONL line (sorted keys, no whitespace padding)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "Event":
        """Inverse of :meth:`to_dict` (used by the trace loader).

        An event type this build does not know — a trace written by a
        newer broker — raises :class:`ConfigurationError` naming the
        offending type, so old validators degrade with a clear message
        instead of a raw lookup error.  Missing envelope keys are
        reported the same way.
        """
        data = dict(payload)
        for key in ("seq", "type", "time"):
            if key not in data:
                raise ConfigurationError(
                    f"trace event is missing the {key!r} envelope field: "
                    f"{payload!r}"
                )
        seq = int(data.pop("seq"))  # type: ignore[arg-type]
        raw_type = data.pop("type")
        try:
            event_type = EventType(raw_type)
        except ValueError:
            known = ", ".join(sorted(t.value for t in EventType))
            raise ConfigurationError(
                f"unknown event type {raw_type!r} in trace (this build knows: "
                f"{known}) — the trace was likely written by a newer broker"
            ) from None
        time = float(data.pop("time"))  # type: ignore[arg-type]
        job_id = data.pop("job_id", None)
        return cls(
            seq=seq,
            type=event_type,
            time=time,
            job_id=None if job_id is None else str(job_id),
            fields=data,
        )


class EventSink:
    """Consumer interface for the event stream.

    Subclasses override :meth:`emit`; :meth:`close` is called when the
    producing service is done with the sink (flush files, etc.).
    """

    def emit(self, event: Event) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources; default is a no-op."""


class RingBufferSink(EventSink):
    """The most recent ``capacity`` events, O(1) memory forever."""

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._ring: deque[Event] = deque(maxlen=capacity)

    def emit(self, event: Event) -> None:
        self._ring.append(event)

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def events(self) -> list[Event]:
        """The buffered events, oldest first."""
        return list(self._ring)

    def tail(self, count: int) -> list[Event]:
        """The most recent ``count`` buffered events, oldest first."""
        if count < 0:
            raise ValueError(f"tail count must be >= 0, got {count}")
        return list(self._ring)[max(0, len(self._ring) - count):]


class CollectingSink(EventSink):
    """Every event, unbounded — for tests and short scripted runs."""

    def __init__(self) -> None:
        self.events: list[Event] = []

    def emit(self, event: Event) -> None:
        self.events.append(event)


class JsonlSink(EventSink):
    """Append events to ``path`` as JSON Lines (one event per line)."""

    def __init__(self, path: str):
        self.path = path
        self._handle = open(path, "w", encoding="utf-8")
        self.count = 0

    def emit(self, event: Event) -> None:
        self._handle.write(event.to_json())
        self._handle.write("\n")
        self.count += 1

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def load_trace(path: str) -> list[Event]:
    """Read a JSONL trace written by :class:`JsonlSink` back into events.

    A malformed record raises :class:`ConfigurationError` carrying the
    file and line number on top of :meth:`Event.from_dict`'s diagnosis.
    """
    events: list[Event] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(Event.from_dict(json.loads(line)))
            except ConfigurationError as error:
                raise ConfigurationError(
                    f"{path}:{line_number}: {error}"
                ) from None
    return events


class EventEmitter:
    """The broker's end of the stream: stamps and fans out events.

    The emitter owns the sequence counter and reads virtual time through
    ``clock`` (the broker wires its own clock in), so producers only name
    the event type, the job and the payload.  With no sinks attached,
    :meth:`emit` is a cheap no-op — tracing costs nothing unless asked
    for.  One emitter is shared by the broker and its components
    (admission, queue, lifecycle) so the sequence numbers give one total
    order over the whole service.
    """

    def __init__(
        self,
        sinks: Sequence[EventSink] = (),
        clock: Optional[Callable[[], float]] = None,
    ):
        self._sinks: list[EventSink] = list(sinks)
        self._clock: Callable[[], float] = clock if clock is not None else (lambda: 0.0)
        self._seq = 0

    @property
    def enabled(self) -> bool:
        """Whether any sink is listening."""
        return bool(self._sinks)

    @property
    def sinks(self) -> tuple[EventSink, ...]:
        return tuple(self._sinks)

    def add_sink(self, sink: EventSink) -> None:
        """Attach one more consumer (takes effect on the next emit)."""
        self._sinks.append(sink)

    def set_clock(self, clock: Callable[[], float]) -> None:
        """Rebind the virtual-time source (the broker's ``now``)."""
        self._clock = clock

    def emit(
        self, event_type: EventType, job_id: Optional[str] = None, **fields: object
    ) -> Optional[Event]:
        """Stamp one event and hand it to every sink; ``None`` when idle."""
        if not self._sinks:
            return None
        bad = RESERVED_KEYS.intersection(fields)
        if bad:
            raise ValueError(f"event fields shadow the envelope: {sorted(bad)}")
        event = Event(
            seq=self._seq,
            type=event_type,
            time=self._clock(),
            job_id=job_id,
            fields=fields,
        )
        self._seq += 1
        for sink in self._sinks:
            sink.emit(event)
        return event

    def ingest(self, event: Event, **extra: object) -> Optional[Event]:
        """Re-stamp a foreign event onto this emitter's sequence.

        The federation tier merges several shard brokers' streams into one
        trace: each shard event keeps its own virtual ``time`` (the shard
        clocks advance independently between synchronisation points) but is
        re-sequenced through the shared counter, and ``extra`` payload
        fields — typically ``shard_id`` — are merged in, so the combined
        stream has unique, totally ordered sequence numbers.
        """
        if not self._sinks:
            return None
        bad = RESERVED_KEYS.intersection(extra)
        if bad:
            raise ValueError(f"event fields shadow the envelope: {sorted(bad)}")
        fields = dict(event.fields)
        fields.update(extra)
        stamped = Event(
            seq=self._seq,
            type=event.type,
            time=event.time,
            job_id=event.job_id,
            fields=fields,
        )
        self._seq += 1
        for sink in self._sinks:
            sink.emit(stamped)
        return stamped

    def close(self) -> None:
        """Close every attached sink."""
        for sink in self._sinks:
            sink.close()


def deterministic_trace(events: Iterable[Event]) -> list[dict[str, object]]:
    """The comparable view of a whole trace (wall-clock fields stripped)."""
    return [event.deterministic_dict() for event in events]
