"""Configuration of the on-line broker service.

The broker turns the repo's one-shot batch cycle into a long-running
component: jobs stream in, a bounded queue absorbs bursts, and cycles
fire either when enough jobs are pending (``batch_size``) or when the
oldest pending job has waited ``max_wait`` virtual-time units.  All
operational knobs live here so the CLI, tests and benchmarks configure
one object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.criteria import Criterion
from repro.model.errors import ConfigurationError
from repro.service.resilience.config import ResilienceConfig

if TYPE_CHECKING:
    from repro.tenancy.config import TenancyConfig


@dataclass(frozen=True)
class ServiceConfig:
    """Operational parameters of a :class:`~repro.service.BrokerService`.

    Parameters
    ----------
    queue_capacity:
        Bound on the number of pending (admitted, not yet scheduled) jobs;
        submissions beyond it are rejected at admission.
    batch_size:
        A scheduling cycle fires as soon as this many jobs are pending,
        and each cycle pops at most this many jobs from the queue.
    max_wait:
        A cycle also fires when the oldest pending job has waited this
        long (virtual time), so a trickle of submissions is not starved
        waiting for a full batch.
    workers:
        Phase-one workers.  ``1`` searches jobs sequentially; larger
        values fan the per-job window search out over a
        ``concurrent.futures`` pool against one shared pool snapshot per
        cycle.  Results are merged in job order, so the assignments are
        identical for any worker count.
    worker_mode:
        ``"thread"`` (default) fans phase one out over a thread pool
        sharing the snapshot object directly.  ``"process"`` uses a
        process pool fed through a ``multiprocessing.shared_memory``
        snapshot (one writer, N readers per cycle — the pool is *not*
        pickled per job); it sidesteps the GIL at the price of one
        columnar decode per worker per cycle, so it pays off when
        phase-one search dominates the cycle and real cores are
        available.
    max_deferrals:
        A job left unscheduled by this many consecutive cycles is dropped
        (the user walks away), keeping the backlog bounded.
    alternatives_per_job:
        Cap on phase-one alternatives per job (``None`` = unlimited).
    criterion:
        Phase-two selection criterion (the VO policy).
    cut_mode:
        Slot-cutting policy applied when committing chosen windows onto
        the shared pool (see :meth:`repro.model.SlotPool.cut_window`).
    completion_factor:
        Actual runtime as a fraction of the reserved runtime.  Values
        below 1 model jobs finishing early: the whole reservation is
        released at completion, so the unused tail becomes free capacity
        for later arrivals.
    check_invariants:
        Run :meth:`repro.model.SlotPool.assert_disjoint_per_node` after
        every cycle.  Cheap insurance by default; benchmarks disable it.
    record_assignments:
        Keep a ``job_id -> Window`` map of every assignment ever made.
        Off by default so an indefinitely running service does not grow
        memory; tests switch it on to compare runs.
    outlook_decay:
        Exponential decay of the warm-start admission outlook
        (:class:`~repro.service.admission.AdmissionOutlook`): cycle
        ``k`` ago weighs ``decay^k``, i.e. an effective window of
        ``~1/(1-decay)`` recent cycles.
    outlook_min_fit:
        Predictive admission gate.  When positive, submissions are
        rejected with ``PREDICTED_MISS`` while the decayed per-criterion
        fit probability (placed / batched over recent cycles) sits below
        this threshold.  ``0.0`` (default) disables the gate, keeping
        admission decision streams byte-identical to brokers without
        the outlook layer.
    outlook_min_fit_cycles:
        Evidence floor: the gate may only fire once this many non-empty
        cycles have been observed, so one unlucky first batch cannot
        slam the door.
    resilience:
        Live fault injection and recovery
        (:class:`~repro.service.resilience.ResilienceConfig`).  ``None``
        (the default) leaves the layer out entirely; the broker's
        behaviour — including its event traces — is then byte-identical
        to a build without the subsystem.
    tenancy:
        Multi-tenant economics
        (:class:`~repro.tenancy.TenancyConfig`): per-tenant credit
        accounts debited at commit time, DRF ordering of which tenant's
        jobs enter each cycle, and a utilization-driven price
        multiplier.  ``None`` (the default) leaves the layer out
        entirely with the same byte-identical guarantee as
        ``resilience``.
    """

    queue_capacity: int = 256
    batch_size: int = 8
    max_wait: float = 25.0
    workers: int = 1
    worker_mode: str = "thread"
    max_deferrals: int = 3
    alternatives_per_job: Optional[int] = 10
    criterion: Criterion = Criterion.FINISH_TIME
    cut_mode: str = "split"
    completion_factor: float = 1.0
    check_invariants: bool = True
    record_assignments: bool = False
    resilience: Optional[ResilienceConfig] = None
    tenancy: Optional["TenancyConfig"] = None
    outlook_decay: float = 0.85
    outlook_min_fit: float = 0.0
    outlook_min_fit_cycles: int = 3

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ConfigurationError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.max_wait <= 0:
            raise ConfigurationError(f"max_wait must be positive, got {self.max_wait}")
        if self.workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {self.workers}")
        if self.worker_mode not in ("thread", "process"):
            raise ConfigurationError(f"unknown worker mode {self.worker_mode!r}")
        if self.max_deferrals < 0:
            raise ConfigurationError(
                f"max_deferrals must be >= 0, got {self.max_deferrals}"
            )
        if self.alternatives_per_job is not None and self.alternatives_per_job < 1:
            raise ConfigurationError(
                f"alternatives_per_job must be >= 1, got {self.alternatives_per_job}"
            )
        if self.cut_mode not in ("split", "consume"):
            raise ConfigurationError(f"unknown cut mode {self.cut_mode!r}")
        if not 0.0 < self.completion_factor <= 1.0:
            raise ConfigurationError(
                f"completion_factor must be in (0, 1], got {self.completion_factor}"
            )
        if not 0.0 < self.outlook_decay < 1.0:
            raise ConfigurationError(
                f"outlook_decay must be in (0, 1), got {self.outlook_decay}"
            )
        if not 0.0 <= self.outlook_min_fit <= 1.0:
            raise ConfigurationError(
                f"outlook_min_fit must be in [0, 1], got {self.outlook_min_fit}"
            )
        if self.outlook_min_fit_cycles < 1:
            raise ConfigurationError(
                f"outlook_min_fit_cycles must be >= 1, got {self.outlook_min_fit_cycles}"
            )
