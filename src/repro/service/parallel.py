"""Parallel phase one: window search fanned out across the batch.

Phase one is embarrassingly parallel — each job's alternative search
reads the pool and writes nothing — so the broker hands every job its
own :meth:`SlotPool.copy` snapshot and runs the searches on a
``concurrent.futures`` thread pool.  Snapshots are taken up front in
job order and results are merged back in job order, so the output is
*identical* for any worker count: parallelism changes wall-clock time,
never assignments.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Sequence

from repro.core.algorithms.base import SlotSelectionAlgorithm
from repro.model.job import Job
from repro.model.slotpool import SlotPool
from repro.model.window import Window


def parallel_find_alternatives(
    search: SlotSelectionAlgorithm,
    jobs: Sequence[Job],
    pool: SlotPool,
    workers: int = 1,
    limit: Optional[int] = None,
) -> dict[str, list[Window]]:
    """Phase-one alternatives per job, searched on per-job pool snapshots.

    Every job is searched against its own copy of ``pool`` as published
    at the start of the cycle (the non-consuming discipline of
    :class:`~repro.scheduling.BatchScheduler`), so job order carries no
    information and the searches are independent.  With ``workers <= 1``
    the loop runs inline; either path returns the same mapping, keyed in
    ``jobs`` order.
    """
    snapshots = [pool.copy() for _ in jobs]
    if workers <= 1 or len(jobs) <= 1:
        return {
            job.job_id: search.find_alternatives(job, snapshot, limit=limit)
            for job, snapshot in zip(jobs, snapshots)
        }
    with ThreadPoolExecutor(max_workers=workers) as executor:
        futures = [
            executor.submit(search.find_alternatives, job, snapshot, limit)
            for job, snapshot in zip(jobs, snapshots)
        ]
        return {job.job_id: future.result() for job, future in zip(jobs, futures)}
