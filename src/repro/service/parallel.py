"""Parallel phase one: window search fanned out across the batch.

Phase one is embarrassingly parallel — each job's alternative search
reads the pool and writes nothing (``select`` never mutates, and CSA
copies internally before cutting) — so the broker publishes **one**
read-only snapshot of the pool per cycle and fans the searches out over
it on a ``concurrent.futures`` thread pool.  Results are merged back in
job order, so the output is *identical* for any worker count:
parallelism changes wall-clock time, never assignments.

The single shared snapshot replaces the per-job ``SlotPool.copy()`` the
first service version took: with hundreds of jobs per cycle those copies
dominated the cycle's allocation churn while providing no isolation the
read-only discipline did not already guarantee.
"""

from __future__ import annotations

from concurrent.futures import Executor, ThreadPoolExecutor
from typing import Optional, Sequence

from repro.core.algorithms.base import SlotSelectionAlgorithm
from repro.model.job import Job
from repro.model.slotpool import SlotPool
from repro.model.window import Window


def parallel_find_alternatives(
    search: SlotSelectionAlgorithm,
    jobs: Sequence[Job],
    pool: SlotPool,
    workers: int = 1,
    limit: Optional[int] = None,
    executor: Optional[Executor] = None,
) -> dict[str, list[Window]]:
    """Phase-one alternatives per job, searched on a shared pool snapshot.

    Every job is searched against the same frozen copy of ``pool`` as
    published at the start of the cycle (the non-consuming discipline of
    :class:`~repro.scheduling.BatchScheduler`), so job order carries no
    information and the searches are independent.  With ``workers <= 1``
    the loop runs inline; either path returns the same mapping, keyed in
    ``jobs`` order.

    ``executor`` optionally supplies a persistent executor (the broker
    keeps one for its lifetime); when omitted and ``workers > 1`` a
    transient :class:`ThreadPoolExecutor` is created for the call.
    """
    snapshot = pool.copy()
    if workers <= 1 or len(jobs) <= 1:
        return {
            job.job_id: search.find_alternatives(job, snapshot, limit=limit)
            for job in jobs
        }
    if executor is not None:
        futures = [
            executor.submit(search.find_alternatives, job, snapshot, limit)
            for job in jobs
        ]
        return {job.job_id: future.result() for job, future in zip(jobs, futures)}
    with ThreadPoolExecutor(max_workers=workers) as transient:
        futures = [
            transient.submit(search.find_alternatives, job, snapshot, limit)
            for job in jobs
        ]
        return {job.job_id: future.result() for job, future in zip(jobs, futures)}
