"""Parallel phase one: window search fanned out across the batch.

Phase one is embarrassingly parallel — each job's alternative search
reads the pool and writes nothing (``select`` never mutates, and CSA
copies internally before cutting) — so the broker publishes **one**
read-only snapshot of the pool per cycle and fans the searches out over
it on a ``concurrent.futures`` pool.  Results are merged back in job
order, so the output is *identical* for any worker count: parallelism
changes wall-clock time, never assignments.

Since the cycle-level batching change, the unit of fan-out is the
*request class*, not the job: jobs whose requests compare equal are
grouped in the parent before submission, one search task runs per class,
and every member of the class receives the class result (later members
get shallow list copies; sharing windows is decision-safe because a
window conflicts with itself, so phase 2 can never assign one twice).
Shared-memory payloads and task counts shrink accordingly on duplicate-
heavy traffic.  Grouping only applies to deterministic searches
(``search.deterministic``); pass ``group_by_class=False`` to restore
strict per-job dispatch.

Two fan-out transports share that discipline:

``"thread"``
    Workers share the snapshot object directly.  The single shared
    snapshot replaces the per-job ``SlotPool.copy()`` the first service
    version took: with hundreds of jobs per cycle those copies dominated
    the cycle's allocation churn while providing no isolation the
    read-only discipline did not already guarantee.

``"process"``
    The cycle's snapshot is published once into a
    ``multiprocessing.shared_memory`` block
    (:meth:`~repro.model.slotarrays.SlotArrays.to_shared`) and workers
    receive only its *name* — the pool is never pickled, neither per job
    nor per cycle.  Each worker process attaches, decodes the columns
    into a pool exactly once per block (cached by name, so a cycle's N
    jobs in one worker pay one decode), and searches that rebuilt pool.
    The rebuilt slots are value-equal to the writer's, which is all the
    broker's span-containment commit requires.  The search object is
    pickled per task, so process mode requires a stateless search (CSA
    is); a search mutating itself across jobs would diverge from the
    thread-mode result.
"""

from __future__ import annotations

from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Optional, Sequence

from repro.core.aep import request_of
from repro.core.algorithms.base import SlotSelectionAlgorithm
from repro.core.vectorized import scan_counters
from repro.model.job import Job, ResourceRequest
from repro.model.slotarrays import SharedSlotArrays
from repro.model.slotpool import SlotPool
from repro.model.window import Window

#: Worker-process cache of the last decoded snapshot: ``(block name,
#: rebuilt pool)``.  One entry suffices — the broker publishes one block
#: per cycle and unlinks it afterwards, so a stale entry is never
#: revisited and the cache cannot grow.
_attached_block: Optional[tuple[str, SlotPool]] = None


def _pool_from_block(name: str, min_usable_length: float) -> SlotPool:
    """The pool decoded from shared block ``name`` (cached per process)."""
    global _attached_block
    if _attached_block is None or _attached_block[0] != name:
        handle = SharedSlotArrays.attach(name)
        try:
            arrays = handle.arrays()  # copies out of the mapping
        finally:
            handle.close()
        _attached_block = (
            name,
            SlotPool.from_arrays(arrays, min_usable_length=min_usable_length),
        )
    return _attached_block[1]


def _search_against_block(
    name: str,
    min_usable_length: float,
    search: SlotSelectionAlgorithm,
    job: Job,
    limit: Optional[int],
) -> list[Window]:
    """One job's phase-one search inside a worker process.

    Module-level so ``ProcessPoolExecutor`` can pickle it.
    """
    pool = _pool_from_block(name, min_usable_length)
    return search.find_alternatives(job, pool, limit=limit)


def _class_members(jobs: Sequence[Job]) -> list[list[int]]:
    """Job indices grouped by request equality, in first-appearance order."""
    groups: dict[ResourceRequest, list[int]] = {}
    for index, job in enumerate(jobs):
        groups.setdefault(request_of(job), []).append(index)
    return list(groups.values())


def _collect(
    executor: Executor,
    submit_one,
    jobs: Sequence[Job],
    member_lists: list[list[int]],
) -> dict[str, list[Window]]:
    futures = [submit_one(executor, jobs[members[0]]) for members in member_lists]
    windows_by_index: dict[int, list[Window]] = {}
    for members, future in zip(member_lists, futures):
        windows = future.result()
        windows_by_index[members[0]] = windows
        for index in members[1:]:
            windows_by_index[index] = list(windows)
    # Keyed in ``jobs`` order, exactly like the historical per-job path.
    return {job.job_id: windows_by_index[index] for index, job in enumerate(jobs)}


def parallel_find_alternatives(
    search: SlotSelectionAlgorithm,
    jobs: Sequence[Job],
    pool: SlotPool,
    workers: int = 1,
    limit: Optional[int] = None,
    executor: Optional[Executor] = None,
    mode: str = "thread",
    group_by_class: bool = True,
) -> dict[str, list[Window]]:
    """Phase-one alternatives per job, searched on a shared pool snapshot.

    Every job is searched against the same frozen view of ``pool`` as
    published at the start of the cycle (the non-consuming discipline of
    :class:`~repro.scheduling.BatchScheduler`), so job order carries no
    information and the searches are independent.  With ``workers <= 1``
    the loop runs inline; every path returns the same mapping, keyed in
    ``jobs`` order.

    With ``group_by_class`` (the default) jobs of equal requests share
    one search task — see the module docstring; results are identical to
    per-job dispatch for deterministic searches, and stochastic searches
    (``search.deterministic == False``) are dispatched per job
    regardless.

    ``mode`` selects the fan-out transport (see the module docstring):
    ``"thread"`` shares the snapshot object, ``"process"`` publishes one
    shared-memory block per call and fans out over processes.

    ``executor`` optionally supplies a persistent executor matching the
    mode (the broker keeps one for its lifetime); when omitted and
    ``workers > 1`` a transient executor is created for the call.
    """
    # Duck-typed: test doubles and third-party searches may predate the
    # grouping protocol, in which case they get per-job dispatch.
    grouped = group_by_class and getattr(search, "deterministic", False)
    batch_search = getattr(search, "find_alternatives_batch", None)
    if workers <= 1 or len(jobs) <= 1:
        snapshot = pool.copy()
        if grouped and batch_search is not None:
            found = batch_search(list(jobs), snapshot, limit=limit)
            return {job.job_id: windows for job, windows in zip(jobs, found)}
        return {
            job.job_id: search.find_alternatives(job, snapshot, limit=limit)
            for job in jobs
        }
    if grouped:
        member_lists = _class_members(jobs)
        scan_counters["grouped_jobs"] += len(jobs)
        scan_counters["grouped_classes"] += len(member_lists)
        scan_counters["grouped_shared"] += len(jobs) - len(member_lists)
    else:
        member_lists = [[index] for index in range(len(jobs))]
    if mode == "process":
        shared = pool.as_arrays().to_shared()
        try:

            def submit_one(pool_executor: Executor, job: Job):
                return pool_executor.submit(
                    _search_against_block,
                    shared.name,
                    pool.min_usable_length,
                    search,
                    job,
                    limit,
                )

            if executor is not None:
                return _collect(executor, submit_one, jobs, member_lists)
            with ProcessPoolExecutor(max_workers=workers) as transient:
                return _collect(transient, submit_one, jobs, member_lists)
        finally:
            shared.close()
            shared.unlink()
    snapshot = pool.copy()

    def submit_one(pool_executor: Executor, job: Job):
        return pool_executor.submit(search.find_alternatives, job, snapshot, limit)

    if executor is not None:
        return _collect(executor, submit_one, jobs, member_lists)
    with ThreadPoolExecutor(max_workers=workers) as transient:
        return _collect(transient, submit_one, jobs, member_lists)
