"""The bounded intake queue and the cycle trigger.

Submissions stream in continuously; scheduling runs in discrete cycles.
The queue absorbs the mismatch (FIFO, bounded — admission rejects at
capacity), and :class:`CycleTrigger` decides *when* to coalesce pending
jobs into a cycle: as soon as ``batch_size`` jobs wait, or when the
oldest has waited ``max_wait`` — the classic size-or-deadline batching
rule, so bursts get big efficient batches and trickles still get
bounded latency.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.model.errors import ConfigurationError, SchedulingError
from repro.model.job import Job
from repro.model.slot import TIME_EPSILON
from repro.service.events import EventEmitter, EventType


@dataclass
class QueuedJob:
    """One pending submission: the job plus its queueing history."""

    job: Job
    enqueued_at: float
    deferrals: int = 0


class BoundedJobQueue:
    """FIFO queue of pending jobs with a hard capacity bound.

    Enqueue times are required to be nondecreasing — the broker's clock
    is monotone and deferral re-pushes stamp the *current* time, so the
    head item is always the longest-waiting one.  :meth:`push` enforces
    the invariant, which is what lets :meth:`oldest_enqueued_at` peek the
    head in O(1) instead of scanning.
    """

    def __init__(self, capacity: int, emitter: Optional[EventEmitter] = None):
        if capacity < 1:
            raise ConfigurationError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._items: deque[QueuedJob] = deque()
        self._emitter = emitter if emitter is not None else EventEmitter()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def depth(self) -> int:
        """Number of pending jobs."""
        return len(self._items)

    @property
    def is_full(self) -> bool:
        """Whether the queue is at capacity."""
        return len(self._items) >= self.capacity

    def job_ids(self) -> set[str]:
        """Ids of every pending job (duplicate-submission guard)."""
        return {item.job.job_id for item in self._items}

    def items(self) -> list[QueuedJob]:
        """A FIFO-ordered snapshot of the pending entries.

        The entries are the live objects (mutating them is the caller's
        responsibility); the list itself is a copy, so the queue can be
        mutated while iterating it.  The tenancy layer's DRF drain uses
        this to group the backlog by owner before picking a batch.
        """
        return list(self._items)

    def oldest_enqueued_at(self) -> Optional[float]:
        """Enqueue time of the longest-waiting job, ``None`` when empty.

        O(1): enqueue times are nondecreasing (enforced by :meth:`push`),
        so the head of the FIFO is always the oldest.
        """
        if not self._items:
            return None
        return self._items[0].enqueued_at

    def push(self, job: Job, now: float, deferrals: int = 0) -> bool:
        """Append a job; returns ``False`` (unchanged) when at capacity.

        Raises when ``now`` precedes the newest item's enqueue time,
        which would silently break the O(1) oldest-item peek.
        """
        if self.is_full:
            return False
        if self._items and now < self._items[-1].enqueued_at - TIME_EPSILON:
            raise SchedulingError(
                f"enqueue times must be nondecreasing: tail is at "
                f"{self._items[-1].enqueued_at}, got {now}"
            )
        self._items.append(QueuedJob(job=job, enqueued_at=now, deferrals=deferrals))
        self._emitter.emit(
            EventType.QUEUED,
            job_id=job.job_id,
            deferrals=deferrals,
            depth=len(self._items),
        )
        return True

    def remove(self, job_id: str) -> Optional[QueuedJob]:
        """Remove one pending job by id; ``None`` when not queued.

        O(n) scan — cancellation is rare next to the O(1) hot path, and
        the FIFO ordering of everything else is preserved untouched.
        """
        for index, item in enumerate(self._items):
            if item.job.job_id == job_id:
                del self._items[index]
                return item
        return None

    def pop_batch(self, limit: int) -> list[QueuedJob]:
        """Remove and return up to ``limit`` jobs in FIFO order."""
        if limit < 1:
            raise ConfigurationError(f"batch limit must be >= 1, got {limit}")
        batch: list[QueuedJob] = []
        while self._items and len(batch) < limit:
            batch.append(self._items.popleft())
        return batch


class CycleTrigger:
    """Size-or-deadline batching policy over a :class:`BoundedJobQueue`."""

    def __init__(self, batch_size: int, max_wait: float):
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        if max_wait <= 0:
            raise ConfigurationError(f"max_wait must be positive, got {max_wait}")
        self.batch_size = batch_size
        self.max_wait = max_wait

    def next_fire_time(self, queue: BoundedJobQueue, now: float) -> Optional[float]:
        """Earliest virtual time a cycle is due, ``None`` when idle.

        A full batch is due immediately; otherwise the deadline is the
        oldest job's enqueue time plus ``max_wait``.
        """
        if queue.depth == 0:
            return None
        if queue.depth >= self.batch_size:
            return now
        oldest = queue.oldest_enqueued_at()
        assert oldest is not None  # depth > 0
        return oldest + self.max_wait

    def should_fire(self, queue: BoundedJobQueue, now: float) -> bool:
        """Whether a cycle is due at ``now``."""
        fire = self.next_fire_time(queue, now)
        return fire is not None and fire <= now + TIME_EPSILON
