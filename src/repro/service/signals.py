"""Graceful shutdown plumbing for long-running CLI entry points.

``repro serve`` and ``repro serve-federation`` run until their job
stream ends — or until the operator stops them.  A bare SIGTERM (the
default ``kill``, and what most supervisors send) would tear the process
down mid-write, leaving a truncated JSONL trace and a live thread pool.
:func:`graceful_interrupt` converts the first SIGTERM into the same
:class:`KeyboardInterrupt` a Ctrl-C raises, so both stop paths flow
through one ``except KeyboardInterrupt`` that closes the broker (worker
pool shutdown) and flushes every event sink before exiting.

The handler is installed only around the serving loop and the previous
disposition is restored on exit, so library callers and tests are never
left with a hijacked signal table.  A second SIGTERM during cleanup gets
the restored (usually default, terminating) behaviour — the escape hatch
when a flush itself wedges.
"""

from __future__ import annotations

import contextlib
import signal
import threading
from typing import Iterator


@contextlib.contextmanager
def graceful_interrupt() -> Iterator[None]:
    """Convert SIGTERM to :class:`KeyboardInterrupt` within the block.

    No-op (but still a valid context manager) when not on the main
    thread, where CPython forbids installing signal handlers.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def _raise_interrupt(signum: int, frame: object) -> None:
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _raise_interrupt)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)
