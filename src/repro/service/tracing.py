"""Trace validation: replay an event stream and check conservation.

The event taxonomy of :mod:`repro.service.events` implies an algebra —
every admitted job must end in exactly one of scheduled / dropped /
still-queued, a job can only retire what it committed, virtual time
never runs backwards — and :class:`TraceValidator` is the machine that
checks it.  It consumes events one at a time (it *is* an
:class:`~repro.service.events.EventSink`, so it can ride along a live
service as an opt-in ``check_invariants``-style hook) or replays a
recorded JSONL trace after the fact, and accumulates violations instead
of stopping at the first, so one pass reports every broken invariant.

This is the tool that catches the accounting-bug class fixed alongside
it: a deferral re-push silently swallowed by a full queue leaves an
admitted job with no terminal state, which :meth:`TraceValidator.check`
reports as a conservation failure.
"""

from __future__ import annotations

import enum
from typing import Iterable, Optional

from repro.model.errors import SchedulingError
from repro.model.slot import TIME_EPSILON
from repro.service.events import Event, EventSink, EventType, load_trace


class TraceInvariantError(SchedulingError):
    """A trace violated the service's conservation invariants."""


class JobState(enum.Enum):
    """Where a job is in its lifecycle, as reconstructed from the trace."""

    SUBMITTED = "submitted"  #: seen SUBMITTED, awaiting the admission verdict
    PENDING = "pending"  #: admitted; queued or deferred, not yet decided
    SCHEDULED = "scheduled"  #: holds a committed window
    RETIRED = "retired"  #: finished; slots released
    DROPPED = "dropped"  #: given up (max deferrals or full queue)
    REJECTED = "rejected"  #: turned away at admission
    ABANDONED = "abandoned"  #: recovery gave the job up after a revocation


#: Transitions the event stream is allowed to make.  QUEUED and DEFERRED
#: keep a job pending — they describe *how* it waits, not a new state.
#: REVOKED/REPAIRED keep a job scheduled (the window is damaged, then
#: mended in place); REPLANNED sends it back to pending; ABANDONED is the
#: resilience layer's terminal verdict.
_TRANSITIONS: dict[EventType, tuple[tuple[Optional[JobState], JobState], ...]] = {
    EventType.ADMITTED: ((JobState.SUBMITTED, JobState.PENDING),),
    EventType.REJECTED: ((JobState.SUBMITTED, JobState.REJECTED),),
    EventType.QUEUED: ((JobState.PENDING, JobState.PENDING),),
    EventType.DEFERRED: ((JobState.PENDING, JobState.PENDING),),
    EventType.SCHEDULED: ((JobState.PENDING, JobState.SCHEDULED),),
    EventType.DROPPED: ((JobState.PENDING, JobState.DROPPED),),
    EventType.RETIRED: ((JobState.SCHEDULED, JobState.RETIRED),),
    EventType.REVOKED: ((JobState.SCHEDULED, JobState.SCHEDULED),),
    EventType.REPAIRED: ((JobState.SCHEDULED, JobState.SCHEDULED),),
    EventType.REPLANNED: ((JobState.SCHEDULED, JobState.PENDING),),
    EventType.ABANDONED: ((JobState.SCHEDULED, JobState.ABANDONED),),
    # Credit events ride alongside the lifecycle without changing it: a
    # debit lands while the commit is being decided (still PENDING —
    # SCHEDULED follows) or right after it (a co-allocator debiting once
    # across already-committed shard legs); a forfeit refund while the
    # (damaged) window is still held; a release refund after the job
    # went back to pending (replanned) or terminal (abandoned); an
    # insufficient-credit verdict either at admission (still SUBMITTED,
    # REJECTED follows) or at commit time (still PENDING, the job is
    # then deferred or dropped).
    EventType.CREDIT_DEBITED: (
        (JobState.PENDING, JobState.PENDING),
        (JobState.SCHEDULED, JobState.SCHEDULED),
    ),
    EventType.CREDIT_REFUNDED: (
        (JobState.SCHEDULED, JobState.SCHEDULED),
        (JobState.PENDING, JobState.PENDING),
        (JobState.ABANDONED, JobState.ABANDONED),
    ),
    EventType.INSUFFICIENT_CREDIT: (
        (JobState.SUBMITTED, JobState.SUBMITTED),
        (JobState.PENDING, JobState.PENDING),
    ),
}

#: The credit-event subset (shared with the federation validator, which
#: replays the same balance laws at its intake tier).
CREDIT_EVENT_TYPES = frozenset(
    {
        EventType.CREDIT_DEBITED,
        EventType.CREDIT_REFUNDED,
        EventType.INSUFFICIENT_CREDIT,
    }
)

#: Absolute slack for replayed credit balances (mirrors the ledger's own
#: :data:`repro.tenancy.ledger.CREDIT_EPSILON` without importing it —
#: tracing must not depend on the optional tenancy package).
_CREDIT_EPSILON = 1e-6


class CreditReplay:
    """Replay ``CREDIT_*`` events and check the ledger laws they imply.

    Each event carries the tenant's *post-operation* balance, so the
    stream itself fixes the arithmetic: a debit's balance must be the
    previous balance minus the amount, a refund's the previous plus the
    amount, and an insufficient-credit verdict leaves it unchanged.  On
    a tenant's first sighting the stated balance is taken as ground
    truth (the trace does not carry initial endowments).  On top of the
    per-event arithmetic: amounts are non-negative, balances never go
    negative, no job's refunds exceed its debits, and globally
    ``refunds <= debits`` (the remainder being provider revenue plus
    open escrow).  Used by both the single-broker and the federation
    validators.
    """

    def __init__(self) -> None:
        self.balances: dict[str, float] = {}
        self.debited_by_job: dict[str, float] = {}
        self.refunded_by_job: dict[str, float] = {}
        self.total_debited = 0.0
        self.total_refunded = 0.0

    def reset_job(self, job_id: str) -> None:
        """A terminal job id was resubmitted: its escrow history resets."""
        self.debited_by_job.pop(job_id, None)
        self.refunded_by_job.pop(job_id, None)

    def observe(self, event: Event) -> list[str]:
        """Check one credit event; returns the violations it triggers."""
        failures: list[str] = []
        tenant = event.fields.get("tenant")
        if not isinstance(tenant, str) or not tenant:
            return [f"{event.type.value} event without a 'tenant' field"]
        balance = event.fields.get("balance")
        if not isinstance(balance, (int, float)):
            return [f"{event.type.value} event without a numeric 'balance'"]
        balance = float(balance)
        if balance < -_CREDIT_EPSILON:
            failures.append(
                f"tenant {tenant!r} balance went negative: {balance}"
            )
        known = self.balances.get(tenant)
        if event.type is EventType.INSUFFICIENT_CREDIT:
            required = event.fields.get("required")
            if not isinstance(required, (int, float)) or required < 0:
                failures.append(
                    "insufficient_credit event without valid 'required'"
                )
            if known is not None and abs(balance - known) > _CREDIT_EPSILON:
                failures.append(
                    f"insufficient_credit changed tenant {tenant!r}'s "
                    f"balance: {known} -> {balance}"
                )
            self.balances[tenant] = balance
            return failures
        amount = event.fields.get("amount")
        if not isinstance(amount, (int, float)) or amount < 0:
            failures.append(
                f"{event.type.value} event without a non-negative 'amount'"
            )
            self.balances[tenant] = balance
            return failures
        amount = float(amount)
        job_id = event.job_id or ""
        if event.type is EventType.CREDIT_DEBITED:
            expected = None if known is None else known - amount
            self.debited_by_job[job_id] = (
                self.debited_by_job.get(job_id, 0.0) + amount
            )
            self.total_debited += amount
        else:  # CREDIT_REFUNDED
            expected = None if known is None else known + amount
            self.refunded_by_job[job_id] = (
                self.refunded_by_job.get(job_id, 0.0) + amount
            )
            self.total_refunded += amount
            debited = self.debited_by_job.get(job_id, 0.0)
            if self.refunded_by_job[job_id] > debited + _CREDIT_EPSILON:
                failures.append(
                    f"job {job_id!r} refunded {self.refunded_by_job[job_id]} "
                    f"credits but was debited only {debited}"
                )
        if expected is not None and abs(balance - expected) > max(
            _CREDIT_EPSILON, 1e-9 * abs(expected)
        ):
            failures.append(
                f"tenant {tenant!r} balance mismatch on "
                f"{event.type.value}: expected {expected}, got {balance}"
            )
        self.balances[tenant] = balance
        return failures

    def check(self) -> list[str]:
        """End-of-trace credit laws; returns the violations found."""
        failures: list[str] = []
        if self.total_refunded > self.total_debited + max(
            _CREDIT_EPSILON, 1e-9 * self.total_debited
        ):
            failures.append(
                f"total refunds ({self.total_refunded}) exceed total "
                f"debits ({self.total_debited})"
            )
        for tenant, balance in self.balances.items():
            if balance < -_CREDIT_EPSILON:
                failures.append(
                    f"tenant {tenant!r} ended with a negative balance: "
                    f"{balance}"
                )
        return failures

    def summary(self) -> dict[str, float]:
        return {
            "credits_debited": round(self.total_debited, 6),
            "credits_refunded": round(self.total_refunded, 6),
            "tenants_seen": len(self.balances),
        }

#: Terminal states a job id may be resubmitted from (a retired or
#: rejected id is free again as far as the broker's duplicate check goes).
_RESUBMITTABLE = frozenset(
    {JobState.RETIRED, JobState.DROPPED, JobState.REJECTED, JobState.ABANDONED}
)


class TraceValidator(EventSink):
    """Replays a broker event stream and checks its conservation laws.

    Invariants checked while observing:

    * virtual time is monotone (event ``time`` never decreases);
    * every per-job event respects the lifecycle state machine
      (no retiring what was never scheduled, no double terminal state);
    * ``CYCLE_START`` / ``CYCLE_END`` alternate with increasing indices;
    * cumulative released node-seconds never exceed committed ones,
      globally and per job.

    Invariants checked at the end (:meth:`check`):

    * ``submitted == admitted + rejected``;
    * every admitted job is in exactly one of scheduled / dropped /
      still-pending (conservation of jobs);
    * with ``expect_drained=True``: nothing is still pending and every
      scheduled job retired.
    """

    def __init__(self) -> None:
        self.violations: list[str] = []
        self.counts: dict[EventType, int] = {t: 0 for t in EventType}
        self._states: dict[str, JobState] = {}
        self._credit = CreditReplay()
        self._committed: dict[str, float] = {}
        self._committed_total = 0.0
        self._released_total = 0.0
        self._forfeited_total = 0.0
        self._window_start: dict[str, float] = {}
        self._revocation_open: set[str] = set()
        self._last_time: Optional[float] = None
        self._cycle_open: Optional[int] = None
        self._last_cycle: Optional[int] = None
        self.events_seen = 0

    # ------------------------------------------------------------------
    # Streaming interface
    # ------------------------------------------------------------------
    def emit(self, event: Event) -> None:
        """EventSink interface: validate as the service runs."""
        self.observe(event)

    def observe(self, event: Event) -> None:
        """Feed one event through the state machine."""
        self.events_seen += 1
        self.counts[event.type] = self.counts.get(event.type, 0) + 1
        self._check_time(event)
        if event.type is EventType.CYCLE_START:
            self._on_cycle_start(event)
        elif event.type is EventType.CYCLE_END:
            self._on_cycle_end(event)
        elif event.type is EventType.SUBMITTED:
            self._on_submitted(event)
        else:
            self._on_job_event(event)

    def observe_all(self, events: Iterable[Event]) -> "TraceValidator":
        """Feed a whole event sequence; returns ``self`` for chaining."""
        for event in events:
            self.observe(event)
        return self

    # ------------------------------------------------------------------
    # Per-event checks
    # ------------------------------------------------------------------
    def _violate(self, event: Optional[Event], message: str) -> None:
        prefix = f"event {event.seq} ({event.type.value}): " if event else ""
        self.violations.append(prefix + message)

    def _check_time(self, event: Event) -> None:
        if self._last_time is not None and event.time < self._last_time - TIME_EPSILON:
            self._violate(
                event,
                f"virtual time ran backwards: {self._last_time} -> {event.time}",
            )
        self._last_time = max(self._last_time or event.time, event.time)

    def _on_cycle_start(self, event: Event) -> None:
        if self._cycle_open is not None:
            self._violate(event, f"cycle {self._cycle_open} is still open")
        cycle = event.fields.get("cycle")
        if not isinstance(cycle, int):
            self._violate(event, "cycle_start carries no integer 'cycle' field")
            cycle = -1
        elif self._last_cycle is not None and cycle <= self._last_cycle:
            self._violate(
                event,
                f"cycle index did not increase: {self._last_cycle} -> {cycle}",
            )
        self._cycle_open = cycle

    def _on_cycle_end(self, event: Event) -> None:
        if self._cycle_open is None:
            self._violate(event, "cycle_end without a matching cycle_start")
            return
        cycle = event.fields.get("cycle")
        if cycle != self._cycle_open:
            self._violate(
                event,
                f"cycle_end for cycle {cycle} inside cycle {self._cycle_open}",
            )
        self._last_cycle = self._cycle_open
        self._cycle_open = None

    def _on_submitted(self, event: Event) -> None:
        job_id = event.job_id
        if job_id is None:
            self._violate(event, "submitted event without a job id")
            return
        state = self._states.get(job_id)
        if state is not None and state not in _RESUBMITTABLE:
            self._violate(
                event, f"job {job_id!r} resubmitted while {state.value}"
            )
        # A resubmitted terminal id starts a fresh life; its committed
        # node-seconds budget and escrow history start over with it.
        self._states[job_id] = JobState.SUBMITTED
        self._committed.pop(job_id, None)
        self._credit.reset_job(job_id)

    def _on_job_event(self, event: Event) -> None:
        job_id = event.job_id
        if job_id is None:
            self._violate(event, "job event without a job id")
            return
        state = self._states.get(job_id)
        allowed = _TRANSITIONS.get(event.type)
        if allowed is None:
            # Federation-level event types (routed, coallocated, ...) are
            # not part of the single-broker taxonomy; seeing one here means
            # a federation trace was fed to the per-shard validator
            # undemultiplexed (use FederationTraceValidator instead).
            self._violate(
                event,
                f"event type {event.type.value!r} is not part of the "
                "single-broker taxonomy (demultiplex federation traces "
                "through FederationTraceValidator)",
            )
            return
        for source, target in allowed:
            if state is source:
                self._states[job_id] = target
                break
        else:
            have = "never seen" if state is None else state.value
            self._violate(
                event,
                f"illegal transition for job {job_id!r}: "
                f"{event.type.value} while {have}",
            )
            return
        if event.type in CREDIT_EVENT_TYPES:
            for message in self._credit.observe(event):
                self._violate(event, message)
            return
        if event.type is EventType.SCHEDULED:
            self._on_scheduled(event, job_id)
        elif event.type is EventType.RETIRED:
            self._on_retired(event, job_id)
        elif event.type is EventType.REVOKED:
            self._on_revoked(event, job_id)
        elif event.type is EventType.REPAIRED:
            self._on_repaired(event, job_id)
        elif event.type in (EventType.REPLANNED, EventType.ABANDONED):
            self._on_window_released(event, job_id)

    def _on_scheduled(self, event: Event, job_id: str) -> None:
        node_seconds = event.fields.get("node_seconds")
        if not isinstance(node_seconds, (int, float)) or node_seconds < 0:
            self._violate(event, "scheduled event without valid 'node_seconds'")
            return
        self._committed[job_id] = float(node_seconds)
        self._committed_total += float(node_seconds)
        window_start = event.fields.get("window_start")
        if isinstance(window_start, (int, float)):
            self._window_start[job_id] = float(window_start)

    def _check_release_totals(self, event: Event) -> None:
        """Global law: released + forfeited never exceed committed."""
        if (
            self._released_total + self._forfeited_total
            > self._committed_total + TIME_EPSILON
        ):
            self._violate(
                event,
                f"cumulative released ({self._released_total}) + forfeited "
                f"({self._forfeited_total}) node-seconds exceed committed "
                f"({self._committed_total})",
            )

    def _on_retired(self, event: Event, job_id: str) -> None:
        if job_id in self._revocation_open:
            self._violate(
                event, f"job {job_id!r} retired with an unresolved revocation"
            )
            self._revocation_open.discard(job_id)
        released = event.fields.get("released_node_seconds")
        if not isinstance(released, (int, float)) or released < 0:
            self._violate(
                event, "retired event without valid 'released_node_seconds'"
            )
            return
        committed = self._committed.get(job_id)
        if committed is None:
            self._violate(event, f"job {job_id!r} retired without a commitment")
            return
        if released > committed + TIME_EPSILON:
            self._violate(
                event,
                f"job {job_id!r} released {released} node-seconds "
                f"but committed only {committed}",
            )
        self._released_total += float(released)
        self._check_release_totals(event)
        self._window_start.pop(job_id, None)

    # ------------------------------------------------------------------
    # Resilience events
    # ------------------------------------------------------------------
    def _on_revoked(self, event: Event, job_id: str) -> None:
        if job_id in self._revocation_open:
            self._violate(
                event,
                f"job {job_id!r} revoked again before the previous "
                "revocation was resolved",
            )
        self._revocation_open.add(job_id)
        node_seconds = event.fields.get("node_seconds")
        if not isinstance(node_seconds, (int, float)) or node_seconds < 0:
            self._violate(event, "revoked event without valid 'node_seconds'")
            return
        committed = self._committed.get(job_id)
        if committed is None:
            self._violate(event, f"job {job_id!r} revoked without a commitment")
            return
        if node_seconds > committed + TIME_EPSILON:
            self._violate(
                event,
                f"job {job_id!r} lost {node_seconds} node-seconds to a "
                f"revocation but held only {committed}",
            )
        # Revoked time is forfeited: it can never be released again.
        self._committed[job_id] = committed - float(node_seconds)
        self._forfeited_total += float(node_seconds)
        self._check_release_totals(event)

    def _on_repaired(self, event: Event, job_id: str) -> None:
        if job_id not in self._revocation_open:
            self._violate(
                event, f"job {job_id!r} repaired without an open revocation"
            )
        self._revocation_open.discard(job_id)
        added = event.fields.get("node_seconds_added")
        if not isinstance(added, (int, float)) or added < 0:
            self._violate(
                event, "repaired event without valid 'node_seconds_added'"
            )
            return
        self._committed[job_id] = self._committed.get(job_id, 0.0) + float(added)
        self._committed_total += float(added)
        # A repair must keep the window where it was: same start time...
        window_start = event.fields.get("window_start")
        expected = self._window_start.get(job_id)
        if (
            isinstance(window_start, (int, float))
            and expected is not None
            and abs(float(window_start) - expected) > TIME_EPSILON
        ):
            self._violate(
                event,
                f"repaired window for job {job_id!r} moved its start: "
                f"{expected} -> {window_start}",
            )
        # ... and distinct nodes across surviving + replacement legs.
        nodes = event.fields.get("nodes")
        if isinstance(nodes, list) and len(set(nodes)) != len(nodes):
            self._violate(
                event,
                f"repaired window for job {job_id!r} reuses nodes: {nodes}",
            )

    def _on_window_released(self, event: Event, job_id: str) -> None:
        """REPLANNED / ABANDONED: the surviving legs go back to the pool."""
        if job_id not in self._revocation_open:
            self._violate(
                event,
                f"job {job_id!r} {event.type.value} without an open revocation",
            )
        self._revocation_open.discard(job_id)
        released = event.fields.get("released_node_seconds")
        if not isinstance(released, (int, float)) or released < 0:
            self._violate(
                event,
                f"{event.type.value} event without valid "
                "'released_node_seconds'",
            )
            return
        committed = self._committed.pop(job_id, None)
        if committed is None:
            self._violate(
                event, f"job {job_id!r} {event.type.value} without a commitment"
            )
            return
        if released > committed + TIME_EPSILON:
            self._violate(
                event,
                f"job {job_id!r} released {released} node-seconds "
                f"but committed only {committed}",
            )
        self._released_total += float(released)
        self._check_release_totals(event)
        self._window_start.pop(job_id, None)

    # ------------------------------------------------------------------
    # Terminal accounting
    # ------------------------------------------------------------------
    def _count_states(self) -> dict[JobState, int]:
        tally = {state: 0 for state in JobState}
        for state in self._states.values():
            tally[state] += 1
        return tally

    @property
    def pending_jobs(self) -> set[str]:
        """Ids of admitted jobs that have reached no terminal state."""
        return {
            job_id
            for job_id, state in self._states.items()
            if state is JobState.PENDING
        }

    def job_states(self) -> dict[str, JobState]:
        """A snapshot of every observed job's reconstructed state.

        The federation validator cross-checks its intake-level ledger
        against the per-shard machines through this view.
        """
        return dict(self._states)

    @property
    def committed_node_seconds(self) -> float:
        return self._committed_total

    @property
    def released_node_seconds(self) -> float:
        return self._released_total

    @property
    def forfeited_node_seconds(self) -> float:
        """Node-seconds lost to revocations (never releasable)."""
        return self._forfeited_total

    def check(self, expect_drained: bool = False) -> "TraceValidator":
        """Run the end-of-trace conservation checks and raise on failure.

        ``expect_drained`` additionally requires an empty queue and every
        scheduled job retired — the state :meth:`BrokerService.drain`
        leaves behind.  Returns ``self`` so callers can chain
        ``TraceValidator().observe_all(events).check()``.
        """
        failures = list(self.violations)
        tally = self._count_states()
        submitted = self.counts[EventType.SUBMITTED]
        admitted = self.counts[EventType.ADMITTED]
        rejected = self.counts[EventType.REJECTED]
        scheduled = self.counts[EventType.SCHEDULED]
        dropped = self.counts[EventType.DROPPED]
        retired = self.counts[EventType.RETIRED]
        replanned = self.counts[EventType.REPLANNED]
        abandoned = self.counts[EventType.ABANDONED]
        if submitted != admitted + rejected:
            failures.append(
                f"submitted ({submitted}) != admitted ({admitted}) "
                f"+ rejected ({rejected})"
            )
        pending = tally[JobState.PENDING]
        # Each REPLANNED hands its job's one surplus SCHEDULED back, so
        # ``scheduled - replanned - abandoned`` counts windows that were
        # *kept* (retired or still running); adding terminal abandons,
        # drops and the still-pending backlog must recover every
        # admission.  With no resilience events this reduces to the
        # original ``admitted = scheduled + dropped + pending``.
        net_scheduled = scheduled - replanned - abandoned
        if admitted != net_scheduled + dropped + abandoned + pending:
            failures.append(
                f"admitted ({admitted}) != kept windows ({net_scheduled}) "
                f"+ dropped ({dropped}) + abandoned ({abandoned}) "
                f"+ still-pending ({pending}): jobs were lost"
            )
        if tally[JobState.SUBMITTED]:
            failures.append(
                f"{tally[JobState.SUBMITTED]} job(s) submitted without an "
                "admission verdict"
            )
        if self._cycle_open is not None:
            failures.append(f"cycle {self._cycle_open} never ended")
        if self._revocation_open:
            failures.append(
                f"{len(self._revocation_open)} revocation(s) were never "
                "resolved (no repaired/replanned/abandoned follow-up)"
            )
        if (
            self._released_total + self._forfeited_total
            > self._committed_total + TIME_EPSILON
        ):
            failures.append(
                f"released ({self._released_total}) + forfeited "
                f"({self._forfeited_total}) node-seconds exceed "
                f"committed ({self._committed_total})"
            )
        failures.extend(self._credit.check())
        if expect_drained:
            if pending:
                failures.append(
                    f"trace claims a drained service but {pending} job(s) "
                    "are still pending"
                )
            if retired != net_scheduled:
                failures.append(
                    f"trace claims a drained service but retired ({retired}) "
                    f"!= scheduled - replanned - abandoned ({net_scheduled})"
                )
        if failures:
            raise TraceInvariantError(
                "trace violates service invariants:\n  "
                + "\n  ".join(failures)
            )
        return self

    def summary(self) -> dict[str, object]:
        """Counter view of the replay (for CLI output and CI logs)."""
        tally = self._count_states()
        return {
            "events": self.events_seen,
            "submitted": self.counts[EventType.SUBMITTED],
            "admitted": self.counts[EventType.ADMITTED],
            "rejected": self.counts[EventType.REJECTED],
            "scheduled": self.counts[EventType.SCHEDULED],
            "dropped": self.counts[EventType.DROPPED],
            "retired": self.counts[EventType.RETIRED],
            "pending": tally[JobState.PENDING],
            "revoked": self.counts[EventType.REVOKED],
            "repaired": self.counts[EventType.REPAIRED],
            "replanned": self.counts[EventType.REPLANNED],
            "abandoned": self.counts[EventType.ABANDONED],
            "committed_node_seconds": round(self._committed_total, 6),
            "released_node_seconds": round(self._released_total, 6),
            "forfeited_node_seconds": round(self._forfeited_total, 6),
            "credit_debited": self.counts[EventType.CREDIT_DEBITED],
            "credit_refunded": self.counts[EventType.CREDIT_REFUNDED],
            "insufficient_credit": self.counts[EventType.INSUFFICIENT_CREDIT],
            **self._credit.summary(),
            "violations": len(self.violations),
        }


def validate_trace_file(
    path: str, expect_drained: bool = False
) -> TraceValidator:
    """Load a JSONL trace and run the full validation; raises on failure."""
    return TraceValidator().observe_all(load_trace(path)).check(
        expect_drained=expect_drained
    )
