"""Simulation harness reproducing the studies of Section 3."""

from repro.simulation.config import (
    PAPER_BUDGET,
    PAPER_FIGURE_CYCLES,
    PAPER_INTERVAL_LENGTH,
    PAPER_INTERVAL_SWEEP,
    PAPER_NODE_COUNT,
    PAPER_NODE_SWEEP,
    PAPER_RESERVATION_TIME,
    PAPER_TABLE_CYCLES,
    PAPER_TASK_COUNT,
    STREAM_MODES,
    ExperimentConfig,
    paper_base_config,
)
from repro.simulation.experiment import (
    CycleOutcome,
    CycleSummary,
    make_generator,
    paper_algorithm_suite,
    run_cycle,
)
from repro.simulation.jobgen import JobGenerator, JobGeneratorConfig
from repro.simulation.trace import FlowEvent, FlowTrace
from repro.simulation.metrics import (
    REPORTED_CRITERIA,
    CsaStats,
    RunningStat,
    WindowStats,
)
from repro.simulation.runner import (
    DEFAULT_CHUNK_SIZE,
    ComparisonResult,
    run_comparison,
    run_spawned_cycle,
)
from repro.simulation.timing import (
    TimingRow,
    TimingStudy,
    growth_exponent,
    measure_point,
    sweep_interval_lengths,
    sweep_node_counts,
)

__all__ = [
    "ComparisonResult",
    "CsaStats",
    "CycleOutcome",
    "CycleSummary",
    "DEFAULT_CHUNK_SIZE",
    "ExperimentConfig",
    "JobGenerator",
    "JobGeneratorConfig",
    "FlowEvent",
    "FlowTrace",
    "growth_exponent",
    "make_generator",
    "measure_point",
    "paper_algorithm_suite",
    "paper_base_config",
    "PAPER_BUDGET",
    "PAPER_FIGURE_CYCLES",
    "PAPER_INTERVAL_LENGTH",
    "PAPER_INTERVAL_SWEEP",
    "PAPER_NODE_COUNT",
    "PAPER_NODE_SWEEP",
    "PAPER_RESERVATION_TIME",
    "PAPER_TABLE_CYCLES",
    "PAPER_TASK_COUNT",
    "REPORTED_CRITERIA",
    "run_comparison",
    "run_cycle",
    "run_spawned_cycle",
    "RunningStat",
    "STREAM_MODES",
    "sweep_interval_lengths",
    "sweep_node_counts",
    "TimingRow",
    "TimingStudy",
    "WindowStats",
]
