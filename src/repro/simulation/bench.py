"""``repro bench-experiments``: Monte-Carlo engine wall-clock + invariance.

Times the multi-cycle comparison runner on the Section 3.1 base
experiment (spawned streams) across a list of worker counts, always
including the no-subprocess in-process mode as the reference row, and
*verifies before it reports*: every row's aggregate statistics must be
bit-identical to the in-process reference — the runner's central
worker-count-invariance guarantee — or the benchmark raises instead of
producing numbers (the same refuse-to-record discipline as
``repro bench-core``).

The archived payload (``BENCH_experiments.json``) records per row the
wall-clock seconds, cycles/s, and the speedup against the 1-worker row,
plus the host's usable CPU count — parallel speedup is bounded by the
hardware, and a 1-core CI runner measuring ~1.0x is the expected
reading, not a regression (no timing gate in CI for exactly that
reason).
"""

from __future__ import annotations

import hashlib
import json
from time import perf_counter
from typing import Optional, Sequence

from repro.core.vectorized import scan_counters
from repro.hostinfo import host_payload, usable_cpu_count
from repro.model.errors import ConfigurationError
from repro.simulation.config import ExperimentConfig, paper_base_config
from repro.simulation.metrics import RunningStat, WindowStats
from repro.simulation.runner import (
    DEFAULT_CHUNK_SIZE,
    ComparisonResult,
    run_comparison,
)


class InvarianceError(AssertionError):
    """Aggregates differed across worker counts — never record timings."""


def _stat_fields(stat: RunningStat) -> list:
    return [
        stat.count,
        stat.mean.hex(),
        stat._m2.hex(),
        stat.minimum.hex(),
        stat.maximum.hex(),
    ]


def _window_stats_fields(stats: WindowStats) -> dict:
    return {
        "attempts": stats.attempts,
        "found": stats.found,
        "metrics": {
            criterion.value: _stat_fields(stat)
            for criterion, stat in stats.metrics.items()
        },
    }


def result_fingerprint(result: ComparisonResult) -> str:
    """SHA-256 over every accumulator field, bit-exact via ``float.hex``."""
    payload = {
        "cycles_run": result.cycles_run,
        "slot_count": _stat_fields(result.slot_count),
        "algorithms": {
            name: _window_stats_fields(stats)
            for name, stats in sorted(result.algorithms.items())
        },
        "csa_alternatives": _stat_fields(result.csa.alternatives),
        "csa_selections": {
            criterion.value: _window_stats_fields(stats)
            for criterion, stats in result.csa.selections.items()
        },
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("ascii")
    ).hexdigest()
    return digest


#: Affinity-aware CPU count; kept as a module alias because other bench
#: modules import it from here.  See :mod:`repro.hostinfo`.
_usable_cpus = usable_cpu_count


def bench_experiments(
    cycles: int = 250,
    worker_counts: Sequence[int] = (1, 2, 4, 8),
    seed: int = 2013,
    node_count: int = 100,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    include_csa: bool = True,
    config: Optional[ExperimentConfig] = None,
) -> dict[str, object]:
    """The experiment-engine benchmark payload (``BENCH_experiments.json``).

    Runs the base experiment once in-process (workers = 0, the reference)
    and once per entry of ``worker_counts``, asserting bit-identical
    aggregates throughout, and reports wall-clock plus speedup-vs-1-worker
    per row.  Raises :class:`InvarianceError` on any aggregate mismatch.
    """
    if cycles < 1:
        raise ConfigurationError(f"cycles must be >= 1, got {cycles}")
    if any(workers < 1 for workers in worker_counts):
        raise ConfigurationError(f"worker counts must be >= 1, got {worker_counts}")
    if config is None:
        config = paper_base_config(cycles=cycles, seed=seed).with_node_count(
            node_count
        )
    else:
        config = config.with_cycles(cycles)
    if config.stream_mode != "spawned":
        raise ConfigurationError(
            "bench_experiments measures the parallel engine; "
            "config.stream_mode must be 'spawned'"
        )

    rows: list[dict[str, object]] = []
    reference_digest: Optional[str] = None
    for workers in [0, *worker_counts]:
        began = perf_counter()
        result = run_comparison(
            config,
            include_csa=include_csa,
            workers=workers or None,
            chunk_size=chunk_size,
        )
        elapsed = perf_counter() - began
        digest = result_fingerprint(result)
        if reference_digest is None:
            reference_digest = digest
        elif digest != reference_digest:
            raise InvarianceError(
                f"aggregates at workers={workers} differ from the in-process "
                f"reference ({digest[:12]} != {reference_digest[:12]}) — "
                "refusing to record timings"
            )
        rows.append(
            {
                "workers": workers,
                "mode": "in-process" if workers == 0 else "process-pool",
                "seconds": round(elapsed, 3),
                "cycles_per_second": round(cycles / elapsed, 2),
                "fingerprint": digest[:16],
            }
        )

    single = next((row for row in rows if row["workers"] == 1), None)
    for row in rows:
        if single is not None:
            row["speedup_vs_1_worker"] = round(
                float(single["seconds"]) / float(row["seconds"]), 2
            )
    return {
        "benchmark": "experiments_engine",
        "config": {
            "cycles": cycles,
            "node_count": node_count,
            "seed": seed,
            "chunk_size": chunk_size,
            "stream_mode": config.stream_mode,
            "include_csa": include_csa,
        },
        "host": host_payload(parallel_target=max(worker_counts, default=1)),
        "scan_kernel": dict(scan_counters),
        "invariant": True,
        "aggregate_fingerprint": reference_digest,
        "results": rows,
    }
