"""Metric collection for the simulation studies.

Each evaluated algorithm produces (at most) one window per cycle; the
studies aggregate the five characteristics the paper's Figs. 2-4 report —
start time, runtime, finish time, processor time, total cost — plus energy
and the find rate.  Aggregation is streaming (Welford), so 5000-cycle runs
need O(1) memory per metric.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.core.criteria import Criterion
from repro.model.window import Window

#: The characteristics reported in the paper's figures, in figure order.
REPORTED_CRITERIA = (
    Criterion.START_TIME,
    Criterion.RUNTIME,
    Criterion.FINISH_TIME,
    Criterion.PROCESSOR_TIME,
    Criterion.COST,
)


@dataclass
class RunningStat:
    """Streaming mean/variance accumulator (Welford's algorithm)."""

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    def add(self, value: float) -> None:
        """Fold one value into the running aggregates."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def merge(self, other: "RunningStat") -> None:
        """Fold another accumulator in (Chan et al. parallel Welford).

        Merging an empty accumulator is a bitwise no-op and merging *into*
        an empty one is a bitwise copy, so a fixed merge order over fixed
        chunks yields bit-identical aggregates for any worker count.
        """
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return
        total = self.count + other.count
        delta = other.mean - self.mean
        self.mean += delta * other.count / total
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self.count = total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    @property
    def variance(self) -> float:
        """Unbiased sample variance; 0 for fewer than two samples."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def sem(self) -> float:
        """Standard error of the mean."""
        if self.count == 0:
            return math.inf
        return self.std / math.sqrt(self.count)

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation confidence interval for the mean."""
        half = z * self.sem
        return (self.mean - half, self.mean + half)


@dataclass
class WindowStats:
    """Aggregated window characteristics for one algorithm."""

    attempts: int = 0
    found: int = 0
    metrics: dict[Criterion, RunningStat] = field(
        default_factory=lambda: {criterion: RunningStat() for criterion in Criterion}
    )

    def observe(self, window: Optional[Window]) -> None:
        """Record one cycle's outcome (``None`` = no feasible window)."""
        self.observe_metrics(window_metrics(window))

    def observe_metrics(self, values: Optional[Mapping[Criterion, float]]) -> None:
        """Record one cycle from a compact metric record (``None`` = miss).

        The record form of :meth:`observe`: the criterion values were
        evaluated where the window lived (e.g. in a worker process), so
        the window and its environment never have to travel or be kept.
        """
        self.attempts += 1
        if values is None:
            return
        self.found += 1
        for criterion, stat in self.metrics.items():
            stat.add(values[criterion])

    def merge(self, other: "WindowStats") -> None:
        """Fold another algorithm accumulator in (see RunningStat.merge)."""
        self.attempts += other.attempts
        self.found += other.found
        for criterion, stat in self.metrics.items():
            stat.merge(other.metrics[criterion])

    @property
    def find_rate(self) -> float:
        """Fraction of attempts that produced a window."""
        if self.attempts == 0:
            return 0.0
        return self.found / self.attempts

    def mean(self, criterion: Criterion) -> float:
        """Mean of one criterion over the observed windows."""
        return self.metrics[criterion].mean

    def as_row(self) -> dict[str, float]:
        """Flat mapping used by table rendering and tests."""
        row = {"found": float(self.found), "find_rate": self.find_rate}
        for criterion in Criterion:
            row[criterion.value] = self.metrics[criterion].mean
        return row


@dataclass
class CsaStats:
    """CSA bookkeeping: alternative counts plus per-criterion selections.

    For every reported criterion the paper selects, among the alternatives
    CSA collected in a cycle, the one that is extreme *by that criterion* —
    so CSA contributes one :class:`WindowStats` per criterion, whose
    diagonal (the criterion it was selected by) is what Figs. 2-4 plot.
    """

    alternatives: RunningStat = field(default_factory=RunningStat)
    selections: dict[Criterion, WindowStats] = field(
        default_factory=lambda: {criterion: WindowStats() for criterion in Criterion}
    )

    def observe(self, windows: list[Window]) -> None:
        """Record one cycle's alternative list."""
        self.observe_metrics(len(windows), csa_selection_metrics(windows))

    def observe_metrics(
        self,
        alternative_count: int,
        selections: Mapping[Criterion, Optional[Mapping[Criterion, float]]],
    ) -> None:
        """Record one cycle from compact records (see WindowStats)."""
        self.alternatives.add(float(alternative_count))
        for criterion, stats in self.selections.items():
            stats.observe_metrics(selections[criterion])

    def merge(self, other: "CsaStats") -> None:
        """Fold another CSA accumulator in (see RunningStat.merge)."""
        self.alternatives.merge(other.alternatives)
        for criterion, stats in self.selections.items():
            stats.merge(other.selections[criterion])

    def diagonal(self, criterion: Criterion) -> float:
        """Mean of the criterion over its own best-by selections."""
        return self.selections[criterion].mean(criterion)


def window_metrics(window: Optional[Window]) -> Optional[dict[Criterion, float]]:
    """Every criterion of one window as a compact, picklable record."""
    if window is None:
        return None
    return {criterion: criterion.evaluate(window) for criterion in Criterion}


def csa_selection_metrics(
    windows: list[Window],
) -> dict[Criterion, Optional[dict[Criterion, float]]]:
    """Per criterion, the metric record of the best-by-that-criterion
    alternative — exactly the windows :meth:`CsaStats.observe` selects."""
    selections: dict[Criterion, Optional[dict[Criterion, float]]] = {}
    for criterion in Criterion:
        if not windows:
            selections[criterion] = None
            continue
        selections[criterion] = window_metrics(min(windows, key=criterion.evaluate))
    return selections
