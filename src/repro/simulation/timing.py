"""Working-time measurement — the engine behind Tables 1-2 and Figs. 5-6.

Measures, on freshly generated environments, the wall-clock time each
algorithm spends selecting a window, exactly as the paper does: "1000
separate experiments were simulated for each value" of the swept parameter
(CPU node count for Table 1, scheduling-interval length for Table 2).  CSA
additionally reports its alternatives count and the per-alternative time.
Absolute milliseconds are hardware-dependent; the benchmarks compare growth
*trends* against the paper's complexity claims.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.algorithms.base import SlotSelectionAlgorithm
from repro.core.algorithms.csa import CSA
from repro.model.job import Job
from repro.simulation.config import ExperimentConfig
from repro.simulation.experiment import make_generator, paper_algorithm_suite
from repro.simulation.metrics import RunningStat


@dataclass
class TimingRow:
    """Timing aggregates for one swept parameter value."""

    parameter: float
    slot_count: RunningStat = field(default_factory=RunningStat)
    csa_alternatives: RunningStat = field(default_factory=RunningStat)
    csa_seconds: RunningStat = field(default_factory=RunningStat)
    algorithm_seconds: dict[str, RunningStat] = field(default_factory=dict)

    @property
    def csa_seconds_per_alternative(self) -> float:
        """Mean CSA time divided by its mean alternative count."""
        if self.csa_alternatives.mean == 0:
            return 0.0
        return self.csa_seconds.mean / self.csa_alternatives.mean

    def mean_ms(self, algorithm_name: str) -> float:
        """Mean selection time of one algorithm in milliseconds."""
        return self.algorithm_seconds[algorithm_name].mean * 1e3


@dataclass
class TimingStudy:
    """Results of a full sweep: one :class:`TimingRow` per parameter value."""

    parameter_name: str
    rows: list[TimingRow] = field(default_factory=list)

    def row_for(self, parameter: float) -> TimingRow:
        """The row measured at one swept parameter value."""
        for row in self.rows:
            if row.parameter == parameter:
                return row
        raise KeyError(f"no timing row for {self.parameter_name}={parameter}")

    def series_ms(self, algorithm_name: str) -> list[tuple[float, float]]:
        """(parameter, mean milliseconds) series for one algorithm."""
        return [(row.parameter, row.mean_ms(algorithm_name)) for row in self.rows]


def _measure(callable_, *args) -> tuple[float, object]:
    begin = time.perf_counter()
    result = callable_(*args)
    return time.perf_counter() - begin, result


def measure_point(
    config: ExperimentConfig,
    parameter: float,
    repetitions: int,
    algorithms: Optional[Sequence[SlotSelectionAlgorithm]] = None,
    *,
    include_csa: bool = True,
    job: Optional[Job] = None,
) -> TimingRow:
    """Timing aggregates for one swept value over ``repetitions`` cycles."""
    generator = make_generator(config)
    if algorithms is None:
        algorithms = paper_algorithm_suite(rng=generator.rng)
    target_job = job if job is not None else config.base_job()
    row = TimingRow(parameter=parameter)
    for algorithm in algorithms:
        row.algorithm_seconds[algorithm.name] = RunningStat()
    csa = CSA()
    for _ in range(repetitions):
        environment = generator.generate()
        pool = environment.slot_pool()
        row.slot_count.add(float(len(pool)))
        for algorithm in algorithms:
            elapsed, _ = _measure(algorithm.select, target_job, pool)
            row.algorithm_seconds[algorithm.name].add(elapsed)
        if include_csa:
            elapsed, alternatives = _measure(csa.find_alternatives, target_job, pool)
            row.csa_seconds.add(elapsed)
            row.csa_alternatives.add(float(len(alternatives)))
    return row


def sweep_node_counts(
    base: ExperimentConfig,
    node_counts: Sequence[int],
    repetitions: int,
    **kwargs,
) -> TimingStudy:
    """The Table 1 sweep: working time vs number of CPU nodes."""
    study = TimingStudy(parameter_name="node_count")
    for node_count in node_counts:
        config = base.with_node_count(node_count)
        study.rows.append(measure_point(config, float(node_count), repetitions, **kwargs))
    return study


def sweep_interval_lengths(
    base: ExperimentConfig,
    lengths: Sequence[float],
    repetitions: int,
    **kwargs,
) -> TimingStudy:
    """The Table 2 sweep: working time vs scheduling-interval length."""
    study = TimingStudy(parameter_name="interval_length")
    for length in lengths:
        config = base.with_interval_length(length)
        study.rows.append(measure_point(config, float(length), repetitions, **kwargs))
    return study


def growth_exponent(series: Sequence[tuple[float, float]]) -> float:
    """Least-squares slope of log(time) against log(parameter).

    An empirical complexity order: ~1 for linear growth, ~2 for quadratic.
    Points with non-positive time (possible at very small scales) are
    dropped.
    """
    xs, ys = [], []
    for parameter, value in series:
        if parameter > 0 and value > 0:
            xs.append(np.log(parameter))
            ys.append(np.log(value))
    if len(xs) < 2:
        raise ValueError("growth_exponent needs at least two positive points")
    slope, _ = np.polyfit(np.array(xs), np.array(ys), 1)
    return float(slope)
