"""Single-cycle experiment driver.

"Since the purpose of the considered algorithms is to allocate suitable
alternatives, it makes sense to make the simulation apart from the whole
general scheduling scheme: the search will be performed for a single
predefined job" on a freshly generated environment each cycle
(Section 3.1).  This module runs exactly that: one environment, one job,
every algorithm on the same slot pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.algorithms import AMP, CSA, MinCost, MinFinish, MinProcTime, MinRunTime
from repro.core.algorithms.base import SlotSelectionAlgorithm
from repro.core.criteria import Criterion
from repro.environment.generator import Environment, EnvironmentGenerator
from repro.model.job import Job
from repro.model.slotpool import SlotPool
from repro.model.window import Window
from repro.simulation.config import ExperimentConfig
from repro.simulation.metrics import csa_selection_metrics, window_metrics


def paper_algorithm_suite(
    rng: Optional[np.random.Generator] = None,
) -> list[SlotSelectionAlgorithm]:
    """The five single-window algorithms evaluated in Section 3.

    CSA is handled separately by the runner because it contributes one
    selection per criterion rather than a single window.
    """
    return [
        AMP(),
        MinFinish(),
        MinCost(),
        MinRunTime(),
        MinProcTime(rng=rng),
    ]


@dataclass(frozen=True)
class CycleSummary:
    """Compact per-cycle metric record — everything aggregation needs.

    A :class:`CycleOutcome` retains the full :class:`Environment` (every
    node timeline) and every selected :class:`Window`; accumulating
    thousands of them is pure memory drag, and shipping them between
    processes is O(nodes) IPC per cycle.  The summary keeps only the
    evaluated criterion values — O(algorithms × criteria) floats — which
    is all the streaming accumulators consume.
    """

    windows: dict[str, Optional[dict[Criterion, float]]]
    csa_alternative_count: int
    csa_selections: dict[Criterion, Optional[dict[Criterion, float]]]
    slot_count: int

    def metrics_of(self, algorithm_name: str) -> Optional[dict[Criterion, float]]:
        """The named algorithm's criterion record this cycle (or ``None``)."""
        return self.windows.get(algorithm_name)


@dataclass(frozen=True)
class CycleOutcome:
    """Results of one simulated scheduling cycle."""

    windows: dict[str, Optional[Window]]
    csa_alternatives: list[Window]
    slot_count: int
    environment: Environment

    def window_of(self, algorithm_name: str) -> Optional[Window]:
        """The named algorithm's window this cycle (or ``None``)."""
        return self.windows.get(algorithm_name)

    def summary(self) -> CycleSummary:
        """This cycle as a compact record, dropping the environment.

        The multi-cycle runner accumulates summaries by default so a
        5000-cycle study never holds more than one environment alive.
        """
        return CycleSummary(
            windows={
                name: window_metrics(window) for name, window in self.windows.items()
            },
            csa_alternative_count=len(self.csa_alternatives),
            csa_selections=csa_selection_metrics(self.csa_alternatives),
            slot_count=self.slot_count,
        )


def run_cycle(
    generator: EnvironmentGenerator,
    job: Job,
    algorithms: Sequence[SlotSelectionAlgorithm],
    *,
    include_csa: bool = True,
    validate: bool = False,
) -> CycleOutcome:
    """Generate one environment and run every algorithm on its slot pool.

    Every algorithm sees the *same* pool (selection never mutates it), so
    the per-cycle results are directly comparable.  With ``validate=True``
    each returned window is checked against the request's invariants —
    slow, but invaluable in tests.
    """
    environment = generator.generate()
    pool: SlotPool = environment.slot_pool()
    windows: dict[str, Optional[Window]] = {}
    for algorithm in algorithms:
        window = algorithm.select(job, pool)
        if validate and window is not None:
            window.validate(job.request)
        windows[algorithm.name] = window
    csa_alternatives: list[Window] = []
    if include_csa:
        csa = CSA(criterion=Criterion.START_TIME)
        csa_alternatives = csa.find_alternatives(job, pool)
        if validate:
            for window in csa_alternatives:
                window.validate(job.request)
    return CycleOutcome(
        windows=windows,
        csa_alternatives=csa_alternatives,
        slot_count=len(pool),
        environment=environment,
    )


def make_generator(config: ExperimentConfig) -> EnvironmentGenerator:
    """An environment generator seeded from the experiment config.

    The experiment seed (not the environment seed) drives the stream so a
    single config value controls the whole study's reproducibility.
    """
    rng = np.random.default_rng(config.seed)
    return EnvironmentGenerator(config.environment, rng=rng)
