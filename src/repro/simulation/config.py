"""Experiment configuration mirroring Section 3.1 of the paper.

The base experiment: a fresh 100-node environment per cycle on the
scheduling interval [0, 600], and a single predefined job requesting the
co-allocation of 5 parallel slots for 150 (reference) time units with a
total budget of 1500 — "this value generally will not allow using the most
expensive (and usually the most efficient) CPU nodes".
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.environment.generator import EnvironmentConfig
from repro.model.errors import ConfigurationError
from repro.model.job import Job, ResourceRequest

#: Paper values (Section 3.1).
PAPER_NODE_COUNT = 100
PAPER_INTERVAL_LENGTH = 600.0
PAPER_TASK_COUNT = 5
PAPER_RESERVATION_TIME = 150.0
PAPER_BUDGET = 1500.0
PAPER_FIGURE_CYCLES = 5000
PAPER_TABLE_CYCLES = 1000
PAPER_NODE_SWEEP = (50, 100, 200, 300, 400)
PAPER_INTERVAL_SWEEP = (600.0, 1200.0, 1800.0, 2400.0, 3000.0, 3600.0)

#: Valid values of :attr:`ExperimentConfig.stream_mode`.
STREAM_MODES = ("spawned", "sequential")


@dataclass(frozen=True)
class ExperimentConfig:
    """One simulation study: environment model + the predefined base job."""

    environment: EnvironmentConfig = field(default_factory=EnvironmentConfig)
    node_count_requested: int = PAPER_TASK_COUNT
    reservation_time: float = PAPER_RESERVATION_TIME
    budget: Optional[float] = PAPER_BUDGET
    cycles: int = PAPER_FIGURE_CYCLES
    seed: Optional[int] = None
    #: ``"spawned"`` (default): every cycle draws from its own
    #: ``SeedSequence.spawn`` child stream, so cycles are independent and
    #: can run in any order on any number of worker processes.
    #: ``"sequential"``: the legacy single stream threaded through every
    #: cycle in order — cycle *k* depends on all prior draws, execution is
    #: forced in-process, but pre-existing seeded results reproduce exactly.
    stream_mode: str = "spawned"

    def __post_init__(self) -> None:
        if self.stream_mode not in STREAM_MODES:
            raise ConfigurationError(
                f"stream_mode must be one of {STREAM_MODES}, got {self.stream_mode!r}"
            )
        if self.cycles < 1:
            raise ConfigurationError(f"cycles must be >= 1, got {self.cycles}")
        if self.node_count_requested < 1:
            raise ConfigurationError(
                f"node_count_requested must be >= 1, got {self.node_count_requested}"
            )
        if self.reservation_time <= 0:
            raise ConfigurationError(
                f"reservation_time must be positive, got {self.reservation_time}"
            )

    def base_request(self) -> ResourceRequest:
        """The predefined resource request of the experiments."""
        return ResourceRequest(
            node_count=self.node_count_requested,
            reservation_time=self.reservation_time,
            budget=self.budget,
        )

    def base_job(self) -> Job:
        """The single predefined job whose windows are being sought."""
        return Job(job_id="base-job", request=self.base_request())

    def with_cycles(self, cycles: int) -> "ExperimentConfig":
        """A copy with a different cycle count."""
        return replace(self, cycles=cycles)

    def with_stream_mode(self, stream_mode: str) -> "ExperimentConfig":
        """A copy with a different RNG stream discipline."""
        return replace(self, stream_mode=stream_mode)

    def spawn_cycle_seeds(self) -> list:
        """One independent ``SeedSequence`` child per cycle (spawned mode).

        Spawning happens once, in the parent, so the per-cycle streams are
        a pure function of ``seed`` — identical no matter which process
        runs which cycle in which order.
        """
        import numpy as np

        return np.random.SeedSequence(self.seed).spawn(self.cycles)

    def with_node_count(self, node_count: int) -> "ExperimentConfig":
        """A copy scaling the environment's node count (Table 1 sweep)."""
        return replace(self, environment=self.environment.with_node_count(node_count))

    def with_interval_length(self, length: float) -> "ExperimentConfig":
        """A copy scaling the scheduling interval (Table 2 sweep)."""
        return replace(
            self, environment=self.environment.with_interval_length(length)
        )


def paper_base_config(cycles: int = PAPER_FIGURE_CYCLES, seed: Optional[int] = 2013) -> ExperimentConfig:
    """The Section 3.1 base configuration, reproducibly seeded."""
    return ExperimentConfig(
        environment=EnvironmentConfig(
            node_count=PAPER_NODE_COUNT,
            interval_start=0.0,
            interval_end=PAPER_INTERVAL_LENGTH,
        ),
        node_count_requested=PAPER_TASK_COUNT,
        reservation_time=PAPER_RESERVATION_TIME,
        budget=PAPER_BUDGET,
        cycles=cycles,
        seed=seed,
    )
