"""Random job-batch generation for batch-scheduling studies.

The paper's own experiments use a single predefined job, but the enclosing
scheme of reference [6] schedules *batches*.  This generator produces
random batches with realistic spreads — task counts, nominal durations,
budget slack, priorities — so the batch scheduler and its studies have a
workload source.  All distributions are configurable and seeded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.model.errors import ConfigurationError
from repro.model.job import Job, JobBatch, ResourceRequest


@dataclass(frozen=True)
class JobGeneratorConfig:
    """Distribution parameters of the batch generator.

    ``budget_slack_range`` scales the budget relative to the *nominal*
    work (``node_count * reservation_time``): a slack of 2.0 with the
    default pricing means roughly "an average-priced window fits".
    """

    node_count_range: tuple[int, int] = (2, 5)
    reservation_time_choices: tuple[float, ...] = (60.0, 100.0, 150.0)
    budget_slack_range: tuple[float, float] = (1.6, 2.4)
    priority_range: tuple[int, int] = (0, 9)
    deadline_probability: float = 0.0
    deadline_slack_range: tuple[float, float] = (2.0, 6.0)
    owners: tuple[str, ...] = ("alice", "bob", "carol")

    def __post_init__(self) -> None:
        low, high = self.node_count_range
        if low < 1 or high < low:
            raise ConfigurationError(f"invalid node_count_range {self.node_count_range}")
        if not self.reservation_time_choices or any(
            t <= 0 for t in self.reservation_time_choices
        ):
            raise ConfigurationError(
                f"invalid reservation_time_choices {self.reservation_time_choices}"
            )
        slack_low, slack_high = self.budget_slack_range
        if slack_low <= 0 or slack_high < slack_low:
            raise ConfigurationError(
                f"invalid budget_slack_range {self.budget_slack_range}"
            )
        if not 0.0 <= self.deadline_probability <= 1.0:
            raise ConfigurationError(
                f"deadline_probability must be in [0, 1], got {self.deadline_probability}"
            )
        prio_low, prio_high = self.priority_range
        if prio_high < prio_low:
            raise ConfigurationError(f"invalid priority_range {self.priority_range}")
        if not self.owners:
            raise ConfigurationError("owners must not be empty")


class JobGenerator:
    """Seeded factory of random jobs and batches."""

    def __init__(
        self,
        config: Optional[JobGeneratorConfig] = None,
        rng: Optional[np.random.Generator] = None,
        seed: Optional[int] = None,
    ):
        self.config = config if config is not None else JobGeneratorConfig()
        if rng is not None:
            self._rng = rng
        else:
            self._rng = np.random.default_rng(seed)
        self._counter = 0

    def generate_job(self, job_id: Optional[str] = None) -> Job:
        """One random job under the configured distributions."""
        cfg = self.config
        rng = self._rng
        node_count = int(rng.integers(cfg.node_count_range[0], cfg.node_count_range[1] + 1))
        reservation = float(rng.choice(cfg.reservation_time_choices))
        slack = float(rng.uniform(*cfg.budget_slack_range))
        budget = node_count * reservation * slack
        deadline = None
        if rng.random() < cfg.deadline_probability:
            deadline = reservation * float(rng.uniform(*cfg.deadline_slack_range))
        if job_id is None:
            job_id = f"job-{self._counter}"
        self._counter += 1
        return Job(
            job_id=job_id,
            request=ResourceRequest(
                node_count=node_count,
                reservation_time=reservation,
                budget=budget,
                deadline=deadline,
            ),
            priority=int(
                rng.integers(cfg.priority_range[0], cfg.priority_range[1] + 1)
            ),
            owner=str(rng.choice(list(cfg.owners))),
        )

    def iter_arrivals(
        self,
        count: int,
        rate: float = 1.0,
        start: float = 0.0,
        prefix: str = "",
    ) -> Iterator[tuple[float, Job]]:
        """A stream of ``(arrival_time, job)`` pairs — on-line job intake.

        Inter-arrival gaps are exponential with mean ``1 / rate`` (a
        Poisson arrival process of ``rate`` jobs per time unit), which is
        the continuous-submission regime the broker service batches into
        scheduling cycles.  Times are strictly increasing; the stream is
        fully determined by the generator's seed.
        """
        if count < 0:
            raise ConfigurationError(f"arrival count must be >= 0, got {count}")
        if rate <= 0:
            raise ConfigurationError(f"arrival rate must be positive, got {rate}")
        clock = start
        for _ in range(count):
            clock += float(self._rng.exponential(1.0 / rate))
            job_id = f"{prefix}job-{self._counter}" if prefix else None
            yield clock, self.generate_job(job_id)

    def generate_batch(self, size: int, prefix: str = "") -> JobBatch:
        """A batch of ``size`` random jobs with unique ids."""
        if size < 0:
            raise ConfigurationError(f"batch size must be >= 0, got {size}")
        batch = JobBatch()
        for index in range(size):
            job_id = f"{prefix}job-{self._counter}" if prefix else None
            batch.add(self.generate_job(job_id))
        return batch
