"""Structured event traces of job-flow simulations.

A flow simulation compresses each cycle into aggregates; for post-hoc
analysis (per-job timelines, owner billing, debugging a starved job) the
full event stream matters.  ``FlowTrace`` records one event per job per
cycle — scheduled (with the window's characteristics), deferred, or
dropped — and exports to plain JSON.

Attach a trace via ``JobFlowSimulation(..., trace=FlowTrace())``; it adds
negligible overhead and is entirely optional.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Optional

from repro.model.job import Job
from repro.model.window import Window

#: Event kinds, in lifecycle order.
SCHEDULED, DEFERRED, DROPPED = "scheduled", "deferred", "dropped"


@dataclass(frozen=True)
class FlowEvent:
    """One job outcome in one cycle."""

    cycle: int
    job_id: str
    owner: str
    event: str
    priority: int
    window_start: Optional[float] = None
    window_finish: Optional[float] = None
    window_cost: Optional[float] = None
    window_nodes: Optional[tuple[int, ...]] = None


@dataclass
class FlowTrace:
    """Append-only event log of one flow simulation."""

    events: list[FlowEvent] = field(default_factory=list)

    def record(
        self, cycle: int, job: Job, event: str, window: Optional[Window] = None
    ) -> None:
        """Append one observation."""
        if event not in (SCHEDULED, DEFERRED, DROPPED):
            raise ValueError(f"unknown flow event kind {event!r}")
        if event == SCHEDULED and window is None:
            raise ValueError("scheduled events require the window")
        self.events.append(
            FlowEvent(
                cycle=cycle,
                job_id=job.job_id,
                owner=job.owner,
                event=event,
                priority=job.priority,
                window_start=window.start if window else None,
                window_finish=window.finish if window else None,
                window_cost=window.total_cost if window else None,
                window_nodes=tuple(window.nodes()) if window else None,
            )
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def for_job(self, job_id: str) -> list[FlowEvent]:
        """The lifecycle of one job, in cycle order."""
        return [event for event in self.events if event.job_id == job_id]

    def by_kind(self, kind: str) -> list[FlowEvent]:
        """All events of one kind."""
        return [event for event in self.events if event.event == kind]

    def cycles(self) -> list[int]:
        """The cycles that produced at least one event."""
        return sorted({event.cycle for event in self.events})

    def owner_spend(self) -> dict[str, float]:
        """Total money spent per owner (scheduled windows only)."""
        spend: dict[str, float] = {}
        for event in self.by_kind(SCHEDULED):
            spend[event.owner] = spend.get(event.owner, 0.0) + (
                event.window_cost or 0.0
            )
        return spend

    def waiting_profile(self) -> dict[str, int]:
        """Deferral count per eventually-scheduled job."""
        waits: dict[str, int] = {}
        for event in self.events:
            if event.event == DEFERRED:
                waits[event.job_id] = waits.get(event.job_id, 0) + 1
        scheduled = {event.job_id for event in self.by_kind(SCHEDULED)}
        return {job_id: count for job_id, count in waits.items() if job_id in scheduled}

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-JSON representation."""
        return {
            "format_version": 1,
            "events": [asdict(event) for event in self.events],
        }

    def save(self, path: str) -> None:
        """Write to ``path`` as JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "FlowTrace":
        """Read back what :meth:`save` wrote."""
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        trace = cls()
        for raw in payload["events"]:
            nodes = raw.get("window_nodes")
            trace.events.append(
                FlowEvent(
                    cycle=int(raw["cycle"]),
                    job_id=raw["job_id"],
                    owner=raw["owner"],
                    event=raw["event"],
                    priority=int(raw["priority"]),
                    window_start=raw.get("window_start"),
                    window_finish=raw.get("window_finish"),
                    window_cost=raw.get("window_cost"),
                    window_nodes=tuple(nodes) if nodes is not None else None,
                )
            )
        return trace
