"""Multi-cycle comparison runner — the engine behind every study.

Runs the paper's base experiment for a configured number of cycles and
aggregates, per algorithm, the five reported window characteristics plus
the CSA alternative statistics.  All randomness flows from the experiment
seed, so results are exactly reproducible.

The 5000-cycle Monte-Carlo campaign of Section 3 is embarrassingly
parallel *if* the cycles are independent, and the config's
``stream_mode`` decides exactly that:

``"spawned"`` (default)
    ``np.random.SeedSequence(seed).spawn(cycles)`` gives every cycle its
    own independent child stream; cycle *k* is a pure function of the
    seed, so cycles fan out in fixed-size chunks over a
    ``ProcessPoolExecutor`` (processes, not threads — the scan kernel is
    pure Python and GIL-bound).  Workers fold their chunk into compact
    partial accumulators (:class:`~repro.simulation.metrics.WindowStats`
    et al., O(algorithms × criteria) floats) and the parent merges the
    partials in deterministic chunk order, so **any worker count —
    including 1 and the no-subprocess in-process mode — produces
    bit-identical aggregate statistics**.

``"sequential"``
    The legacy single stream threaded through every cycle in order.
    Cycle *k* depends on all prior draws, execution is forced in-process,
    and pre-change seeded results reproduce bit-for-bit.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.algorithms.base import SlotSelectionAlgorithm
from repro.core.criteria import Criterion
from repro.environment.generator import EnvironmentGenerator
from repro.model.errors import ConfigurationError
from repro.model.job import Job
from repro.simulation.config import ExperimentConfig
from repro.simulation.experiment import (
    CycleSummary,
    make_generator,
    paper_algorithm_suite,
    run_cycle,
)
from repro.simulation.metrics import CsaStats, RunningStat, WindowStats

#: Cycles folded per worker task.  Fixed (never derived from the worker
#: count) because the chunk decomposition *is* the merge tree: identical
#: chunks merged in identical order is what makes aggregates bit-identical
#: across worker counts.
DEFAULT_CHUNK_SIZE = 16


@dataclass
class ComparisonResult:
    """Aggregated outcome of a multi-cycle comparison study."""

    config: ExperimentConfig
    algorithms: dict[str, WindowStats] = field(default_factory=dict)
    csa: CsaStats = field(default_factory=CsaStats)
    slot_count: RunningStat = field(default_factory=RunningStat)
    cycles_run: int = 0

    def mean_of(self, algorithm_name: str, criterion: Criterion) -> float:
        """Mean criterion value of one algorithm's selected windows."""
        return self.algorithms[algorithm_name].mean(criterion)

    def csa_mean_of(self, criterion: Criterion) -> float:
        """CSA's mean for ``criterion`` when selecting by that criterion."""
        return self.csa.diagonal(criterion)

    def all_means(self, criterion: Criterion) -> dict[str, float]:
        """Criterion means of every algorithm plus CSA's diagonal value."""
        means = {
            name: stats.mean(criterion) for name, stats in self.algorithms.items()
        }
        means["CSA"] = self.csa_mean_of(criterion)
        return means

    def ranking(self, criterion: Criterion) -> list[str]:
        """Algorithm names ordered best (smallest mean) first."""
        means = self.all_means(criterion)
        return sorted(means, key=means.__getitem__)


def run_spawned_cycle(
    config: ExperimentConfig,
    cycle_seed,
    algorithms: Optional[Sequence[SlotSelectionAlgorithm]] = None,
    *,
    include_csa: bool = True,
    validate: bool = False,
    job: Optional[Job] = None,
) -> CycleSummary:
    """One self-contained cycle of a spawned-stream study.

    Everything random — the environment and MinProcTime's selection —
    draws from a generator built from ``cycle_seed`` alone, so the
    summary is identical no matter which process runs the cycle when.
    """
    rng = np.random.default_rng(cycle_seed)
    generator = EnvironmentGenerator(config.environment, rng=rng)
    if algorithms is None:
        algorithms = paper_algorithm_suite(rng=rng)
    target_job = job if job is not None else config.base_job()
    outcome = run_cycle(
        generator, target_job, algorithms, include_csa=include_csa, validate=validate
    )
    return outcome.summary()


@dataclass
class _StudyContext:
    """Static per-study state, shipped to each worker process **once**.

    Everything a chunk needs that does not vary between chunks —
    configuration, the algorithm suite, flags, the job override — goes
    here and rides the ``ProcessPoolExecutor`` *initializer*, so it is
    pickled once per worker instead of once per task.  Tasks themselves
    shrink to ``(index, cycle_seeds)``.
    """

    config: ExperimentConfig
    algorithms: Optional[list[SlotSelectionAlgorithm]]
    algorithm_names: list[str]
    include_csa: bool
    validate: bool
    job: Optional[Job]


@dataclass
class _ChunkTask:
    """One worker task: a contiguous block of cycles of one study."""

    index: int
    cycle_seeds: list


#: The study context installed in this worker process (by
#: :func:`_install_study_context` via the executor initializer); the
#: parent's in-process path never touches it.
_study_context: Optional[_StudyContext] = None


def _install_study_context(context: _StudyContext) -> None:
    global _study_context
    _study_context = context


def _run_chunk_in_worker(task: _ChunkTask) -> "_ChunkResult":
    """Worker-side entry: fold a chunk against the installed context."""
    assert _study_context is not None, "executor initializer did not run"
    return _run_chunk(task, _study_context)


@dataclass
class _ChunkResult:
    """Partial accumulators of one chunk — O(algorithms × criteria) IPC."""

    index: int
    algorithms: dict[str, WindowStats]
    csa: CsaStats
    slot_count: RunningStat
    cycles: int


def _run_chunk(task: _ChunkTask, context: _StudyContext) -> _ChunkResult:
    """Fold one chunk's cycles into fresh partial accumulators.

    The exact code path of both the in-process mode and (through
    :func:`_run_chunk_in_worker`) the subprocess mode, which is what
    keeps the two modes bit-identical.
    """
    partial = _ChunkResult(
        index=task.index,
        algorithms={name: WindowStats() for name in context.algorithm_names},
        csa=CsaStats(),
        slot_count=RunningStat(),
        cycles=0,
    )
    for cycle_seed in task.cycle_seeds:
        summary = run_spawned_cycle(
            context.config,
            cycle_seed,
            context.algorithms,
            include_csa=context.include_csa,
            validate=context.validate,
            job=context.job,
        )
        _observe_summary(partial, summary, context.include_csa)
    return partial


def _observe_summary(
    partial: _ChunkResult, summary: CycleSummary, include_csa: bool
) -> None:
    for name, stats in partial.algorithms.items():
        stats.observe_metrics(summary.windows[name])
    if include_csa:
        partial.csa.observe_metrics(
            summary.csa_alternative_count, summary.csa_selections
        )
    partial.slot_count.add(float(summary.slot_count))
    partial.cycles += 1


def _chunk_tasks(config: ExperimentConfig, chunk_size: int) -> list[_ChunkTask]:
    cycle_seeds = config.spawn_cycle_seeds()
    return [
        _ChunkTask(index=index, cycle_seeds=cycle_seeds[begin : begin + chunk_size])
        for index, begin in enumerate(range(0, config.cycles, chunk_size))
    ]


def _merge_chunks(
    result: ComparisonResult, partials: Sequence[_ChunkResult], include_csa: bool
) -> ComparisonResult:
    """Merge partial accumulators in chunk order — the deterministic tree."""
    for partial in sorted(partials, key=lambda p: p.index):
        for name, stats in result.algorithms.items():
            stats.merge(partial.algorithms[name])
        if include_csa:
            result.csa.merge(partial.csa)
        result.slot_count.merge(partial.slot_count)
        result.cycles_run += partial.cycles
    return result


def _run_sequential(
    config: ExperimentConfig,
    algorithms: Optional[Sequence[SlotSelectionAlgorithm]],
    include_csa: bool,
    validate: bool,
    job: Optional[Job],
) -> ComparisonResult:
    """The legacy single-stream loop, kept verbatim for exact reproduction."""
    generator = make_generator(config)
    if algorithms is None:
        algorithms = paper_algorithm_suite(rng=generator.rng)
    target_job = job if job is not None else config.base_job()

    result = ComparisonResult(config=config)
    for algorithm in algorithms:
        result.algorithms[algorithm.name] = WindowStats()

    for _ in range(config.cycles):
        outcome = run_cycle(
            generator,
            target_job,
            algorithms,
            include_csa=include_csa,
            validate=validate,
        )
        summary = outcome.summary()
        for algorithm in algorithms:
            result.algorithms[algorithm.name].observe_metrics(
                summary.windows[algorithm.name]
            )
        if include_csa:
            result.csa.observe_metrics(
                summary.csa_alternative_count, summary.csa_selections
            )
        result.slot_count.add(float(summary.slot_count))
        result.cycles_run += 1
    return result


def run_comparison(
    config: ExperimentConfig,
    algorithms: Optional[Sequence[SlotSelectionAlgorithm]] = None,
    *,
    include_csa: bool = True,
    validate: bool = False,
    job: Optional[Job] = None,
    workers: Optional[int] = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> ComparisonResult:
    """Run ``config.cycles`` independent scheduling cycles and aggregate.

    Parameters
    ----------
    config:
        The study configuration (environment model, base job, cycle count,
        RNG stream discipline).
    algorithms:
        Algorithms to compare; the paper's suite by default.  In spawned
        mode the default suite is rebuilt per cycle around the cycle's own
        stream; an explicit list is reused as-is (and must be picklable
        when ``workers`` is set — avoid algorithms holding private RNGs,
        their state would depend on execution order).
    include_csa:
        Also run the CSA multi-alternative search each cycle (dominates the
        running time, exactly as in the paper).
    validate:
        Validate every returned window against the request (for tests).
    job:
        Override the predefined base job.
    workers:
        ``None`` or ``0`` — in-process, no subprocesses (the default).
        ``n >= 1`` — fan the chunks out over ``n`` worker processes
        (spawned mode only).  Aggregates are bit-identical for every
        value of ``workers``.
    chunk_size:
        Cycles per worker task.  Part of the deterministic merge tree: the
        same ``(seed, cycles, chunk_size)`` always yields bit-identical
        aggregates, while changing ``chunk_size`` may shift the last few
        ULPs (never the statistics).
    """
    if chunk_size < 1:
        raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
    if workers is not None and workers < 0:
        raise ConfigurationError(f"workers must be >= 0, got {workers}")
    if config.stream_mode == "sequential":
        if workers is not None and workers > 1:
            raise ConfigurationError(
                "stream_mode='sequential' threads one RNG stream through every "
                "cycle and cannot run on multiple workers; use "
                "stream_mode='spawned' (the default) for parallel execution"
            )
        return _run_sequential(config, algorithms, include_csa, validate, job)

    if algorithms is None:
        algorithm_names = [a.name for a in paper_algorithm_suite()]
    else:
        algorithm_names = [a.name for a in algorithms]
    context = _StudyContext(
        config=config,
        algorithms=list(algorithms) if algorithms is not None else None,
        algorithm_names=algorithm_names,
        include_csa=include_csa,
        validate=validate,
        job=job,
    )
    tasks = _chunk_tasks(config, chunk_size)
    result = ComparisonResult(config=config)
    for name in algorithm_names:
        result.algorithms[name] = WindowStats()

    if workers is None or workers == 0:
        partials = [_run_chunk(task, context) for task in tasks]
    else:
        # The static context rides the initializer — pickled once per
        # worker — so tasks on the wire are just (index, seeds).
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_install_study_context,
            initargs=(context,),
        ) as executor:
            partials = list(executor.map(_run_chunk_in_worker, tasks))
    return _merge_chunks(result, partials, include_csa)
