"""Multi-cycle comparison runner — the engine behind Figs. 2-4.

Runs the paper's base experiment for a configured number of cycles and
aggregates, per algorithm, the five reported window characteristics plus
the CSA alternative statistics.  All randomness flows from the experiment
seed, so results are exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.algorithms.base import SlotSelectionAlgorithm
from repro.core.criteria import Criterion
from repro.model.job import Job
from repro.simulation.config import ExperimentConfig
from repro.simulation.experiment import make_generator, paper_algorithm_suite, run_cycle
from repro.simulation.metrics import CsaStats, RunningStat, WindowStats


@dataclass
class ComparisonResult:
    """Aggregated outcome of a multi-cycle comparison study."""

    config: ExperimentConfig
    algorithms: dict[str, WindowStats] = field(default_factory=dict)
    csa: CsaStats = field(default_factory=CsaStats)
    slot_count: RunningStat = field(default_factory=RunningStat)
    cycles_run: int = 0

    def mean_of(self, algorithm_name: str, criterion: Criterion) -> float:
        """Mean criterion value of one algorithm's selected windows."""
        return self.algorithms[algorithm_name].mean(criterion)

    def csa_mean_of(self, criterion: Criterion) -> float:
        """CSA's mean for ``criterion`` when selecting by that criterion."""
        return self.csa.diagonal(criterion)

    def all_means(self, criterion: Criterion) -> dict[str, float]:
        """Criterion means of every algorithm plus CSA's diagonal value."""
        means = {
            name: stats.mean(criterion) for name, stats in self.algorithms.items()
        }
        means["CSA"] = self.csa_mean_of(criterion)
        return means

    def ranking(self, criterion: Criterion) -> list[str]:
        """Algorithm names ordered best (smallest mean) first."""
        means = self.all_means(criterion)
        return sorted(means, key=means.__getitem__)


def run_comparison(
    config: ExperimentConfig,
    algorithms: Optional[Sequence[SlotSelectionAlgorithm]] = None,
    *,
    include_csa: bool = True,
    validate: bool = False,
    job: Optional[Job] = None,
) -> ComparisonResult:
    """Run ``config.cycles`` independent scheduling cycles and aggregate.

    Parameters
    ----------
    config:
        The study configuration (environment model, base job, cycle count).
    algorithms:
        Algorithms to compare; the paper's suite by default.
    include_csa:
        Also run the CSA multi-alternative search each cycle (dominates the
        running time, exactly as in the paper).
    validate:
        Validate every returned window against the request (for tests).
    job:
        Override the predefined base job.
    """
    generator = make_generator(config)
    if algorithms is None:
        algorithms = paper_algorithm_suite(rng=generator.rng)
    target_job = job if job is not None else config.base_job()

    result = ComparisonResult(config=config)
    for algorithm in algorithms:
        result.algorithms[algorithm.name] = WindowStats()

    for _ in range(config.cycles):
        outcome = run_cycle(
            generator,
            target_job,
            algorithms,
            include_csa=include_csa,
            validate=validate,
        )
        for algorithm in algorithms:
            result.algorithms[algorithm.name].observe(outcome.windows[algorithm.name])
        if include_csa:
            result.csa.observe(outcome.csa_alternatives)
        result.slot_count.add(float(outcome.slot_count))
        result.cycles_run += 1
    return result
