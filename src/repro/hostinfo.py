"""Host capability reporting shared by the bench payloads.

Every ``bench-*`` command archives a JSON payload next to the code, and
those numbers are only interpretable against the machine that produced
them.  The one subtlety is the CPU count: containers and CI runners
routinely pin processes to a subset of the machine's cores, so
``os.cpu_count()`` (the machine) overstates what a benchmark could
actually use.  :func:`usable_cpu_count` asks the scheduler for the
process's affinity mask instead, and every ``cpu_limited`` flag in the
archived baselines derives from it.
"""

from __future__ import annotations

import os
import platform


def usable_cpu_count() -> int:
    """CPUs this process may actually run on, not CPUs the machine has.

    ``len(os.sched_getaffinity(0))`` honours cgroup/affinity pinning;
    ``os.cpu_count()`` is only the fallback where affinity masks do not
    exist (non-Linux platforms).
    """
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def host_payload(parallel_target: int = 2) -> dict[str, object]:
    """The standard ``host`` block of a bench payload.

    ``parallel_target`` is the parallelism the benchmark would need for
    its speedup numbers to be meaningful (e.g. the largest worker count
    measured); ``cpu_limited`` records that this host cannot provide it,
    so a ~1x speedup row is read as a host artifact rather than a
    regression.
    """
    cpus = usable_cpu_count()
    return {
        "usable_cpus": cpus,
        "python": platform.python_version(),
        "cpu_limited": cpus < parallel_target,
    }
