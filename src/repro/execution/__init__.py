"""Execution replay on non-dedicated resources (disturbance robustness)."""

from repro.execution.disturbance import (
    PAPER_DISTURBANCE_RATE,
    PAPER_LOCAL_JOB_LENGTH_RANGE,
    PoissonDisturbances,
    Preemption,
    paper_disturbance_model,
    sample_preemption_schedule,
)
from repro.execution.replay import (
    ExecutionReport,
    JobOutcome,
    TaskOutcome,
    replay_execution,
)

__all__ = [
    "ExecutionReport",
    "JobOutcome",
    "PAPER_DISTURBANCE_RATE",
    "PAPER_LOCAL_JOB_LENGTH_RANGE",
    "paper_disturbance_model",
    "PoissonDisturbances",
    "Preemption",
    "replay_execution",
    "sample_preemption_schedule",
    "TaskOutcome",
]
