"""Execution replay on non-dedicated resources (disturbance robustness)."""

from repro.execution.disturbance import PoissonDisturbances, Preemption
from repro.execution.replay import (
    ExecutionReport,
    JobOutcome,
    TaskOutcome,
    replay_execution,
)

__all__ = [
    "ExecutionReport",
    "JobOutcome",
    "PoissonDisturbances",
    "Preemption",
    "replay_execution",
    "TaskOutcome",
]
