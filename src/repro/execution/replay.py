"""Execution replay: what committed windows actually experience.

Given an environment, a set of committed windows (one per job) and a
disturbance model, replay the execution per node with suspend/resume
semantics:

* a task starts at its planned window start, unless its node is still
  busy finishing an earlier (delayed) reservation — then it starts when
  the node frees up;
* a local preemption arriving while a task runs suspends it for the
  preemption's length; preemptions arriving while the node is idle (or
  inside another preemption) delay whatever is pending;
* a job finishes when its last task finishes.

The replay produces per-job and aggregate statistics (delay, slowdown,
preemption counts) that the robustness benchmark compares across
selection criteria: windows on many slow nodes expose more node-hours to
disturbance than compact windows on few fast nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.execution.disturbance import (
    PoissonDisturbances,
    Preemption,
    sample_preemption_schedule,
)
from repro.model.window import Window


@dataclass(frozen=True)
class TaskOutcome:
    """Actual execution of one window leg."""

    job_id: str
    node_id: int
    planned_start: float
    planned_end: float
    actual_start: float
    actual_end: float
    preempted_time: float
    preemption_count: int

    @property
    def delay(self) -> float:
        """Actual finish minus planned finish."""
        return self.actual_end - self.planned_end


@dataclass(frozen=True)
class JobOutcome:
    """Actual execution of one job's window."""

    job_id: str
    planned_finish: float
    actual_finish: float
    tasks: tuple[TaskOutcome, ...]

    @property
    def delay(self) -> float:
        """Actual finish minus planned finish."""
        return self.actual_finish - self.planned_finish

    @property
    def slowdown(self) -> float:
        """Actual / planned job duration (1.0 = undisturbed)."""
        planned_start = min(task.planned_start for task in self.tasks)
        planned = self.planned_finish - planned_start
        actual = self.actual_finish - planned_start
        if planned <= 0:
            return 1.0
        return actual / planned

    @property
    def preemption_count(self) -> int:
        """Local-job preemptions absorbed."""
        return sum(task.preemption_count for task in self.tasks)


@dataclass
class ExecutionReport:
    """Aggregate view of one replay."""

    jobs: dict[str, JobOutcome] = field(default_factory=dict)

    @property
    def mean_delay(self) -> float:
        """Mean job delay over the replay."""
        if not self.jobs:
            return 0.0
        return float(np.mean([outcome.delay for outcome in self.jobs.values()]))

    @property
    def mean_slowdown(self) -> float:
        """Mean actual/planned duration ratio."""
        if not self.jobs:
            return 1.0
        return float(np.mean([outcome.slowdown for outcome in self.jobs.values()]))

    @property
    def disturbed_fraction(self) -> float:
        """Fraction of jobs that finished later than planned."""
        if not self.jobs:
            return 0.0
        disturbed = sum(1 for outcome in self.jobs.values() if outcome.delay > 1e-9)
        return disturbed / len(self.jobs)

    def total_preemptions(self) -> int:
        """Preemptions absorbed across all jobs."""
        return sum(outcome.preemption_count for outcome in self.jobs.values())


def _replay_node(
    reservations: list[tuple[str, float, float]],
    preemptions: list[Preemption],
) -> list[TaskOutcome]:
    """Replay one node: planned (job, start, duration) + preemptions.

    Reservations are executed in planned-start order; each absorbs the
    preempted time that arrives while it runs, pushing itself (and any
    queued successors) later.
    """
    outcomes: list[TaskOutcome] = []
    free_at = 0.0
    pending = sorted(preemptions, key=lambda event: event.arrival)
    index = 0

    for job_id, planned_start, duration in sorted(
        reservations, key=lambda item: item[1]
    ):
        actual_start = max(planned_start, free_at)
        remaining = duration
        clock = actual_start
        preempted_time = 0.0
        hits = 0
        while True:
            # Preemptions that arrive before this task's current end.
            if index < len(pending) and pending[index].arrival < clock + remaining:
                event = pending[index]
                index += 1
                if event.arrival < clock:
                    # Arrived while the node was idle or already suspended:
                    # the full length delays the task from its start.
                    preempted_time += event.length
                    remaining += 0.0
                    clock += event.length
                    hits += 1
                    continue
                # Runs until the preemption arrives, then suspends.
                progressed = event.arrival - clock
                remaining -= progressed
                clock = event.arrival + event.length
                preempted_time += event.length
                hits += 1
                continue
            break
        actual_end = clock + remaining
        outcomes.append(
            TaskOutcome(
                job_id=job_id,
                node_id=-1,  # filled by the caller
                planned_start=planned_start,
                planned_end=planned_start + duration,
                actual_start=actual_start,
                actual_end=actual_end,
                preempted_time=preempted_time,
                preemption_count=hits,
            )
        )
        free_at = actual_end
    return outcomes


def replay_execution(
    assignments: dict[str, Window],
    model: Optional[PoissonDisturbances] = None,
    rng: Optional[np.random.Generator] = None,
    horizon: Optional[float] = None,
) -> ExecutionReport:
    """Replay the committed windows under a disturbance model.

    Parameters
    ----------
    assignments:
        Job id -> committed window (e.g. ``CycleReport.scheduled``).
    model:
        Disturbance model; the default is a light Poisson load.
    rng:
        Randomness source (seed it for reproducible replays).
    horizon:
        Time horizon for disturbance sampling; defaults to 2x the latest
        planned finish, so delayed tails can still be disturbed.
    """
    model = model if model is not None else PoissonDisturbances()
    rng = rng if rng is not None else np.random.default_rng()

    per_node: dict[int, list[tuple[str, float, float]]] = {}
    for job_id, window in assignments.items():
        for ws in window.slots:
            per_node.setdefault(ws.slot.node.node_id, []).append(
                (job_id, window.start, ws.required_time)
            )

    if horizon is None:
        latest = max(
            (window.finish for window in assignments.values()), default=0.0
        )
        horizon = 2.0 * latest if latest > 0 else 0.0

    task_outcomes: dict[str, list[TaskOutcome]] = {job_id: [] for job_id in assignments}
    schedule = sample_preemption_schedule(model, per_node, horizon, rng)
    for node_id, reservations in per_node.items():
        for outcome in _replay_node(reservations, schedule[node_id]):
            task_outcomes[outcome.job_id].append(
                TaskOutcome(
                    job_id=outcome.job_id,
                    node_id=node_id,
                    planned_start=outcome.planned_start,
                    planned_end=outcome.planned_end,
                    actual_start=outcome.actual_start,
                    actual_end=outcome.actual_end,
                    preempted_time=outcome.preempted_time,
                    preemption_count=outcome.preemption_count,
                )
            )

    report = ExecutionReport()
    for job_id, window in assignments.items():
        tasks = tuple(task_outcomes[job_id])
        report.jobs[job_id] = JobOutcome(
            job_id=job_id,
            planned_finish=window.finish,
            actual_finish=max(task.actual_end for task in tasks),
            tasks=tasks,
        )
    return report
