"""Disturbance models for non-dedicated resources.

The paper's environment is *non-dedicated*: local and high-priority jobs
own the nodes, and the broker only reserves the published gaps.  Between
the moment a window is committed and the moment it runs, more local work
can arrive and preempt the reservation.  The paper factors this risk out
of its experiments (the slot lists are snapshots), but any deployment of
the algorithms has to live with it — so the execution simulator models it
explicitly, and a benchmark quantifies how each selection criterion's
windows degrade under it.

A disturbance model samples, per node, a set of preemption events: local
jobs that arrive at random times and suspend whatever reservation is
running (suspend/resume semantics — the task loses the preempted time and
finishes late).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.errors import ConfigurationError


@dataclass(frozen=True)
class Preemption:
    """One local-job arrival on a node: suspends work for ``length``."""

    arrival: float
    length: float


@dataclass(frozen=True)
class PoissonDisturbances:
    """Poisson local-job arrivals with uniformly distributed lengths.

    Parameters
    ----------
    rate:
        Expected arrivals per node per time unit.  The paper's base
        interval is 600 units, so ``rate=0.001`` means ~0.6 local
        arrivals per node per cycle.
    length_range:
        Uniform bounds of a local job's length; the default floor matches
        the paper's minimum local-job length of 10.
    """

    rate: float = 0.001
    length_range: tuple[float, float] = (10.0, 40.0)

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ConfigurationError(f"rate must be >= 0, got {self.rate}")
        low, high = self.length_range
        if low <= 0 or high < low:
            raise ConfigurationError(f"invalid length_range {self.length_range}")

    def sample(
        self, horizon: float, rng: np.random.Generator
    ) -> list[Preemption]:
        """Preemption events on one node over ``[0, horizon)``."""
        if horizon <= 0 or self.rate == 0:
            return []
        count = int(rng.poisson(self.rate * horizon))
        events = [
            Preemption(
                arrival=float(rng.uniform(0.0, horizon)),
                length=float(rng.uniform(*self.length_range)),
            )
            for _ in range(count)
        ]
        events.sort(key=lambda event: event.arrival)
        return events
