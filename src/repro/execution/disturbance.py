"""Disturbance models for non-dedicated resources.

The paper's environment is *non-dedicated*: local and high-priority jobs
own the nodes, and the broker only reserves the published gaps.  Between
the moment a window is committed and the moment it runs, more local work
can arrive and preempt the reservation.  The paper factors this risk out
of its experiments (the slot lists are snapshots), but any deployment of
the algorithms has to live with it — so the execution simulator models it
explicitly, and a benchmark quantifies how each selection criterion's
windows degrade under it.

A disturbance model samples, per node, a set of preemption events: local
jobs that arrive at random times and suspend whatever reservation is
running (suspend/resume semantics — the task loses the preempted time and
finishes late).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.model.errors import ConfigurationError

#: The paper-scale disturbance intensity: expected local-job arrivals per
#: node per time unit.  Over the base scheduling interval of 600 units
#: this is ~1.2 local arrivals per node — the regime the robustness study
#: and the live resilience benchmark both probe.
PAPER_DISTURBANCE_RATE = 0.002

#: Uniform bounds of a local job's length; the floor matches the paper's
#: minimum local-job length of 10.
PAPER_LOCAL_JOB_LENGTH_RANGE = (10.0, 40.0)


@dataclass(frozen=True)
class Preemption:
    """One local-job arrival on a node: suspends work for ``length``."""

    arrival: float
    length: float


@dataclass(frozen=True)
class PoissonDisturbances:
    """Poisson local-job arrivals with uniformly distributed lengths.

    Parameters
    ----------
    rate:
        Expected arrivals per node per time unit.  The paper's base
        interval is 600 units, so ``rate=0.001`` means ~0.6 local
        arrivals per node per cycle.
    length_range:
        Uniform bounds of a local job's length; the default floor matches
        the paper's minimum local-job length of 10.
    """

    rate: float = 0.001
    length_range: tuple[float, float] = (10.0, 40.0)

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ConfigurationError(f"rate must be >= 0, got {self.rate}")
        low, high = self.length_range
        if low <= 0 or high < low:
            raise ConfigurationError(f"invalid length_range {self.length_range}")

    def sample(
        self, horizon: float, rng: np.random.Generator
    ) -> list[Preemption]:
        """Preemption events on one node over ``[0, horizon)``."""
        if horizon <= 0 or self.rate == 0:
            return []
        count = int(rng.poisson(self.rate * horizon))
        events = [
            Preemption(
                arrival=float(rng.uniform(0.0, horizon)),
                length=float(rng.uniform(*self.length_range)),
            )
            for _ in range(count)
        ]
        events.sort(key=lambda event: event.arrival)
        return events


def paper_disturbance_model(
    rate: float = PAPER_DISTURBANCE_RATE,
    length_range: tuple[float, float] = PAPER_LOCAL_JOB_LENGTH_RANGE,
) -> PoissonDisturbances:
    """The disturbance model at the paper-scale calibration.

    Both the offline robustness study (``benchmarks/
    test_robustness_disturbances.py``) and the live resilience layer
    (:mod:`repro.service.resilience`) build their models here, so the
    two never drift apart on rate or local-job lengths.
    """
    return PoissonDisturbances(rate=rate, length_range=length_range)


def sample_preemption_schedule(
    model: PoissonDisturbances,
    node_ids: Iterable[int],
    horizon: float,
    rng: np.random.Generator,
    offset: float = 0.0,
) -> dict[int, list[Preemption]]:
    """Per-node preemption events over ``[offset, offset + horizon)``.

    The single shared sampling path: the execution replay
    (:func:`repro.execution.replay.replay_execution`) and the broker's
    live :class:`~repro.service.resilience.RevocationInjector` both draw
    their local-job arrivals through this function, one node at a time in
    the order ``node_ids`` is given, so offline studies and online
    injection agree on the statistics by construction.  Arrivals are
    shifted by ``offset`` (the replay samples from 0, the injector from
    the start of the advanced interval).
    """
    schedule: dict[int, list[Preemption]] = {}
    for node_id in node_ids:
        events = model.sample(horizon, rng)
        if offset:
            events = [
                Preemption(arrival=event.arrival + offset, length=event.length)
                for event in events
            ]
        schedule[node_id] = events
    return schedule
