"""Synthetic distributed-computing environments (Section 3.1 of the paper)."""

from repro.environment.distributions import (
    hypergeometric_fraction,
    partition_total,
    positive_normal,
    uniform_int,
)
from repro.environment.generator import Environment, EnvironmentConfig, EnvironmentGenerator
from repro.environment.load import (
    DEFAULT_MIN_LOCAL_JOB_LENGTH,
    LoadModel,
    build_timeline,
)
from repro.environment.presets import PRESETS, preset
from repro.environment.pricing import MarketPricing
from repro.environment.rolling import HorizonConfig, RollingHorizonSource

__all__ = [
    "build_timeline",
    "DEFAULT_MIN_LOCAL_JOB_LENGTH",
    "Environment",
    "EnvironmentConfig",
    "EnvironmentGenerator",
    "HorizonConfig",
    "hypergeometric_fraction",
    "LoadModel",
    "MarketPricing",
    "preset",
    "PRESETS",
    "partition_total",
    "positive_normal",
    "RollingHorizonSource",
    "uniform_int",
]
