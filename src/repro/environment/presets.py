"""Named environment presets for sensitivity studies.

The paper evaluates one environment family (Section 3.1).  Its qualitative
claims — which criterion wins what, by how much — implicitly depend on the
family's load level, heterogeneity and pricing noise.  These presets vary
one axis at a time around the paper's base point so the sensitivity
benchmarks can show where each algorithm's advantage grows or collapses
(e.g. with homogeneous nodes MinRunTime loses its edge entirely; under
high load the window supply, and with it CSA's alternative count, dries
up).
"""

from __future__ import annotations

from dataclasses import replace

from repro.environment.generator import EnvironmentConfig
from repro.environment.load import LoadModel
from repro.environment.pricing import MarketPricing
from repro.model.errors import ConfigurationError


def paper_base(node_count: int = 100, seed=None) -> EnvironmentConfig:
    """The Section 3.1 environment."""
    return EnvironmentConfig(node_count=node_count, seed=seed)


def low_load(node_count: int = 100, seed=None) -> EnvironmentConfig:
    """Lightly loaded nodes: initial utilization in [2%, 15%]."""
    return replace(
        paper_base(node_count, seed), load=LoadModel(load_range=(0.02, 0.15))
    )


def high_load(node_count: int = 100, seed=None) -> EnvironmentConfig:
    """Heavily loaded nodes: initial utilization in [50%, 85%]."""
    return replace(
        paper_base(node_count, seed), load=LoadModel(load_range=(0.50, 0.85))
    )


def homogeneous(node_count: int = 100, seed=None) -> EnvironmentConfig:
    """Identical node speeds: performance fixed at the base mean (6).

    With equal speeds every window has the same runtime profile, so the
    runtime/finish criteria lose their meaning and only price noise
    differentiates windows.
    """
    return replace(paper_base(node_count, seed), performance_range=(6, 6))


def extreme_heterogeneity(node_count: int = 100, seed=None) -> EnvironmentConfig:
    """A wider speed spread than the paper's: performance ~ U{1..20}."""
    return replace(paper_base(node_count, seed), performance_range=(1, 20))


def noisy_market(node_count: int = 100, seed=None) -> EnvironmentConfig:
    """Chaotic pricing: triple the paper-calibrated deviation.

    More mispriced nodes widen the cost spread MinCost can exploit.
    """
    base = paper_base(node_count, seed)
    return replace(base, pricing=replace(base.pricing, sigma=0.3))


def literal_proportional_pricing(node_count: int = 100, seed=None) -> EnvironmentConfig:
    """The literal "proportional to performance" pricing (exponent 1.0).

    Kept as a preset so the calibration argument of
    :mod:`repro.environment.pricing` can be demonstrated: under this
    pricing the budget stops binding on fast nodes and MinRunTime's
    runtime collapses toward the hardware limit.
    """
    base = paper_base(node_count, seed)
    return replace(base, pricing=replace(base.pricing, exponent=1.0))


PRESETS = {
    "paper-base": paper_base,
    "low-load": low_load,
    "high-load": high_load,
    "homogeneous": homogeneous,
    "extreme-heterogeneity": extreme_heterogeneity,
    "noisy-market": noisy_market,
    "literal-pricing": literal_proportional_pricing,
}


def preset(name: str, node_count: int = 100, seed=None) -> EnvironmentConfig:
    """Look up a preset by name (see :data:`PRESETS`)."""
    try:
        factory = PRESETS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown environment preset {name!r}; available: {sorted(PRESETS)}"
        ) from None
    return factory(node_count=node_count, seed=seed)
