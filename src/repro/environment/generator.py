"""Generation of complete distributed-computing environments.

One *environment* is the state the metascheduler sees at the start of a
scheduling cycle: a set of heterogeneous CPU nodes, each with its own
timeline of local load, and the resulting pool of free slots over the
scheduling interval.  Section 3.1 of the paper fixes the base environment
(100 nodes, performance ~ U{2..10}, market pricing, hypergeometric load in
[10%, 50%], interval [0, 600]); every parameter is exposed here so the
node-count and interval-length sweeps of Tables 1–2 are plain config
changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from repro.environment.distributions import uniform_int
from repro.environment.load import LoadModel
from repro.environment.pricing import MarketPricing
from repro.model.errors import ConfigurationError
from repro.model.resource import CpuNode, NodeSpec
from repro.model.slot import Slot
from repro.model.slotpool import SlotPool
from repro.model.timeline import Timeline


@dataclass(frozen=True)
class EnvironmentConfig:
    """All knobs of the environment generator (paper defaults)."""

    node_count: int = 100
    interval_start: float = 0.0
    interval_end: float = 600.0
    performance_range: tuple[int, int] = (2, 10)
    pricing: MarketPricing = field(default_factory=MarketPricing)
    load: LoadModel = field(default_factory=LoadModel)
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.node_count < 1:
            raise ConfigurationError(f"node_count must be >= 1, got {self.node_count}")
        if self.interval_end <= self.interval_start:
            raise ConfigurationError(
                f"empty scheduling interval [{self.interval_start}, {self.interval_end})"
            )
        low, high = self.performance_range
        if low < 1 or high < low:
            raise ConfigurationError(f"invalid performance range {self.performance_range}")

    @property
    def interval_length(self) -> float:
        """Length of the scheduling interval."""
        return self.interval_end - self.interval_start

    def with_node_count(self, node_count: int) -> "EnvironmentConfig":
        """A copy with a different node count (Table 1 sweep)."""
        return replace(self, node_count=node_count)

    def with_interval_length(self, length: float) -> "EnvironmentConfig":
        """A copy with a different interval length (Table 2 sweep)."""
        return replace(self, interval_end=self.interval_start + length)


@dataclass
class Environment:
    """The generated state of one scheduling cycle."""

    config: EnvironmentConfig
    nodes: list[CpuNode]
    timelines: dict[int, Timeline]

    def slots(self, min_length: float = 0.0) -> list[Slot]:
        """All free slots of all nodes, ordered by non-decreasing start."""
        collected: list[Slot] = []
        for node in self.nodes:
            collected.extend(
                self.timelines[node.node_id].free_slots(max(min_length, 1e-9))
            )
        collected.sort(key=Slot.sort_key)
        return collected

    def slot_pool(self, min_length: float = 0.0) -> SlotPool:
        """A fresh :class:`SlotPool` over the current free slots."""
        return SlotPool.from_slots(self.slots(min_length))

    def utilization(self) -> float:
        """Average initial utilization across nodes."""
        return float(
            np.mean([timeline.utilization() for timeline in self.timelines.values()])
        )

    def commit_window(self, window) -> None:
        """Mark a window's reservations busy on the node timelines.

        Makes allocations visible to the *next* scheduling cycle; the
        current cycle's slot pools must be updated via
        :meth:`SlotPool.cut_window`.
        """
        for ws in window.slots:
            timeline = self.timelines[ws.slot.node.node_id]
            timeline.add_busy(window.start, window.start + ws.required_time)


class EnvironmentGenerator:
    """Factory producing random environments from a configuration.

    The generator owns a :class:`numpy.random.Generator` seeded from
    ``config.seed``; calling :meth:`generate` repeatedly yields an i.i.d.
    sequence of environments, which is how the paper runs its 5000
    simulated scheduling cycles ("during every single experiment a
    generation of a new distributed computing environment will take
    place").
    """

    def __init__(self, config: EnvironmentConfig, rng: Optional[np.random.Generator] = None):
        self.config = config
        self._rng = rng if rng is not None else np.random.default_rng(config.seed)

    @property
    def rng(self) -> np.random.Generator:
        """The generator's randomness source."""
        return self._rng

    def generate_node(self, node_id: int) -> CpuNode:
        """One heterogeneous node: uniform integer performance, market price."""
        low, high = self.config.performance_range
        performance = float(uniform_int(self._rng, low, high))
        price = self.config.pricing.price_for(performance, self._rng)
        spec = NodeSpec(clock_speed=performance / 2.0, ram=4096, disk=100, os="linux")
        return CpuNode(
            node_id=node_id, performance=performance, price_per_unit=price, spec=spec
        )

    def generate(self) -> Environment:
        """A complete environment: nodes, loaded timelines."""
        nodes = [self.generate_node(node_id) for node_id in range(self.config.node_count)]
        timelines: dict[int, Timeline] = {}
        for node in nodes:
            timeline = Timeline(
                node, self.config.interval_start, self.config.interval_end
            )
            self.config.load.populate(timeline, self._rng)
            timelines[node.node_id] = timeline
        return Environment(config=self.config, nodes=nodes, timelines=timelines)
