"""Rolling-horizon slot supply for long-running brokers.

The paper's environment is a single fixed interval (``[0, 600]`` by
default): the generator loads every node's timeline once and the broker
schedules inside it until free time runs out.  A production service has
no final interval — its horizon *rolls*: as the virtual clock advances,
``trim_before`` garbage-collects the past while new future capacity is
published ahead of ``now``.  This module supplies that future capacity.

:class:`RollingHorizonSource` owns a fixed node fleet and generates
local load **per segment**: virtual time is divided into consecutive
segments of ``stride`` length, and segment ``k`` (spanning
``[origin + k·stride, origin + (k+1)·stride)``) is loaded with its own
spawned RNG — ``np.random.default_rng([seed, k])`` — so the slots of a
segment are a pure function of ``(config, seed, k)``.  Two brokers
driven to the same virtual time see byte-identical pools no matter how
coarsely their clocks stepped, and a soak run can extend the horizon
thousands of times without replaying earlier randomness.

:meth:`RollingHorizonSource.ensure` is the broker-facing entry point:
called with the pool and the current virtual time, it appends every
not-yet-published segment that starts before ``now + lead``.  Combined
with the broker's per-cycle ``trim_before``, the live pool stays inside
a bounded window ``[now, now + lead + stride)`` over unbounded virtual
time — the flat-memory requirement of soak serving.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.environment.distributions import uniform_int
from repro.environment.generator import EnvironmentConfig
from repro.model.errors import ConfigurationError
from repro.model.resource import CpuNode, NodeSpec
from repro.model.slotpool import SlotPool
from repro.model.timeline import Timeline


@dataclass(frozen=True)
class HorizonConfig:
    """Shape of the rolling horizon.

    Parameters
    ----------
    lead:
        How far ahead of the current virtual time the pool must offer
        free slots.  The broker tops the pool up to ``now + lead`` at
        every cycle, so ``lead`` bounds the furthest start any window
        can be given — it plays the role of the paper's fixed interval
        end, relative to ``now`` instead of absolute.
    stride:
        Segment length: capacity is appended in whole segments of this
        many virtual-time units.  Smaller strides publish capacity in
        finer increments (smoother pool size, more extension calls);
        larger strides amortize generation cost.
    """

    lead: float = 600.0
    stride: float = 600.0

    def __post_init__(self) -> None:
        if self.lead <= 0:
            raise ConfigurationError(f"horizon lead must be positive, got {self.lead}")
        if self.stride <= 0:
            raise ConfigurationError(
                f"horizon stride must be positive, got {self.stride}"
            )


class RollingHorizonSource:
    """Deterministic per-segment slot supply over a fixed node fleet.

    Parameters
    ----------
    config:
        The environment parameters (fleet size, performance range,
        pricing, load model, seed).  ``interval_start`` anchors segment
        0; ``interval_end`` is ignored — the horizon has no end.
    horizon:
        Lead and stride of the rolling window.

    The fleet is generated once (node ``k`` from the spawned stream
    ``[seed, node-tag, k]``), so node identities, prices and
    performances are stable across the whole run — matching the paper's
    model where the *load* is transient but the resource fleet is not.
    """

    #: Spawn-key tags separating the fleet stream from segment streams.
    _NODE_TAG = 0
    _SEGMENT_TAG = 1

    def __init__(self, config: EnvironmentConfig, horizon: HorizonConfig):
        self.config = config
        self.horizon = horizon
        self._origin = config.interval_start
        if config.seed is not None:
            self._seed = int(config.seed)
        else:
            # Draw one entropy-based root so an unseeded source is still
            # internally consistent (every segment derives from it).
            self._seed = int(np.random.default_rng().integers(0, 2**63))
        self.nodes: list[CpuNode] = self._generate_fleet()
        #: Index of the next segment to publish; segments are published
        #: strictly in order so the pool's content at a given horizon is
        #: independent of the call pattern that reached it.
        self._next_segment = 0

    # ------------------------------------------------------------------
    # Fleet
    # ------------------------------------------------------------------
    def _generate_fleet(self) -> list[CpuNode]:
        """The stable node fleet (same sampling as EnvironmentGenerator)."""
        rng = np.random.default_rng([self._seed, self._NODE_TAG])
        low, high = self.config.performance_range
        nodes: list[CpuNode] = []
        for node_id in range(self.config.node_count):
            performance = float(uniform_int(rng, low, high))
            price = self.config.pricing.price_for(performance, rng)
            spec = NodeSpec(
                clock_speed=performance / 2.0, ram=4096, disk=100, os="linux"
            )
            nodes.append(
                CpuNode(
                    node_id=node_id,
                    performance=performance,
                    price_per_unit=price,
                    spec=spec,
                )
            )
        return nodes

    # ------------------------------------------------------------------
    # Segments
    # ------------------------------------------------------------------
    @property
    def segments_published(self) -> int:
        """Number of segments generated so far."""
        return self._next_segment

    @property
    def published_until(self) -> float:
        """Virtual time up to which capacity has been published."""
        return self._origin + self._next_segment * self.horizon.stride

    def _publish_segment(self, pool: SlotPool, segment: int) -> int:
        """Generate segment ``segment``'s load and add its free slots."""
        stride = self.horizon.stride
        seg_start = self._origin + segment * stride
        seg_end = seg_start + stride
        rng = np.random.default_rng([self._seed, self._SEGMENT_TAG, segment])
        added = 0
        for node in self.nodes:
            timeline = Timeline(node, seg_start, seg_end)
            self.config.load.populate(timeline, rng)
            for slot in timeline.free_slots(1e-9):
                # Coalescing merges a slot starting exactly at the
                # segment boundary with the same node's slot ending
                # there, so segment seams never fragment the pool.
                pool.add(slot)
                added += 1
        return added

    def extend_to(self, pool: SlotPool, target: float) -> int:
        """Publish every unpublished segment starting before ``target``.

        Returns the number of slots added.  Idempotent for a fixed
        ``target``; segments already published are never regenerated.
        """
        added = 0
        while self.published_until < target:
            added += self._publish_segment(pool, self._next_segment)
            self._next_segment += 1
        return added

    def ensure(self, pool: SlotPool, now: float) -> int:
        """Top the pool up so it reaches at least ``now + lead``.

        The broker calls this wherever it trims (cycle start, clock
        advance, drain), making trim + extend one bounded-window step.
        Returns the number of slots added.
        """
        return self.extend_to(pool, now + self.horizon.lead)
