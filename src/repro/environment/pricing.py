"""Free-market pricing of heterogeneous nodes.

Section 3.1: "The resource usage cost was formed proportionally to their
performance with an element of normally distributed deviation in order to
simulate a free market pricing model."

We implement a slightly generalized power law::

    price_per_unit = factor * performance**exponent * (1 + N(0, sigma))

clipped from below at a small positive floor.

Why an exponent above 1 (the default is 1.5)
--------------------------------------------
With a strictly linear rate the *per-task* cost is flat in performance —
a task on a fast node costs the same as on a slow one, because it finishes
proportionally sooner.  Under that model the user budget of the paper's
base experiment (S = 1500 for five tasks of nominal length 150) can never
exclude the fastest nodes, yet the paper states explicitly that the budget
"generally will not allow using the most expensive (and usually the most
efficient) CPU nodes" and measures MinRunTime at a runtime of 33 (i.e. the
fastest *affordable* nodes have performance ~4.5, not 10).  A mildly
super-linear rate makes fast nodes pricier per unit of work, reproducing
all the qualitative facts of Section 3.2:

* the cheapest tasks sit on slow nodes (MinCost "tries to use relatively
  cheap and (usually) less productive CPU nodes");
* the fastest nodes exceed the per-task budget share, capping MinRunTime;
* a typical mixed window costs just about the whole budget, matching the
  reported clustering of AMP / MinFinish / MinRunTime / CSA costs near S.

The exponent and deviation are configuration, not hard-coded behaviour:
``exponent=1.0`` recovers the literal proportional model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.errors import ConfigurationError

#: Defaults calibrated against the paper's base experiment (see module
#: docstring and EXPERIMENTS.md).
DEFAULT_PRICE_FACTOR = 1.0
DEFAULT_PRICE_EXPONENT = 1.5
DEFAULT_PRICE_SIGMA = 0.1
DEFAULT_PRICE_FLOOR = 0.05


@dataclass(frozen=True)
class MarketPricing:
    """Pricing policy: rate is a noisy power law of node performance.

    Parameters
    ----------
    factor:
        Scale of the price per time unit.
    exponent:
        Power of performance in the rate; 1.0 is the literal
        "proportional" reading, the default 1.5 is the calibrated value
        (see module docstring).
    sigma:
        Relative standard deviation of the multiplicative normal
        deviation.
    floor:
        Lowest admissible price per time unit (prices stay positive).
    """

    factor: float = DEFAULT_PRICE_FACTOR
    exponent: float = DEFAULT_PRICE_EXPONENT
    sigma: float = DEFAULT_PRICE_SIGMA
    floor: float = DEFAULT_PRICE_FLOOR

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise ConfigurationError(f"price factor must be positive, got {self.factor}")
        if self.exponent <= 0:
            raise ConfigurationError(
                f"price exponent must be positive, got {self.exponent}"
            )
        if self.sigma < 0:
            raise ConfigurationError(f"price sigma must be >= 0, got {self.sigma}")
        if self.floor <= 0:
            raise ConfigurationError(f"price floor must be positive, got {self.floor}")

    def price_for(self, performance: float, rng: np.random.Generator) -> float:
        """Draw the price per time unit for a node of ``performance``."""
        if performance <= 0:
            raise ConfigurationError(f"performance must be positive, got {performance}")
        deviation = 1.0 + float(rng.normal(0.0, self.sigma))
        return max(self.floor, self.factor * performance**self.exponent * deviation)

    def expected_price(self, performance: float) -> float:
        """Mean price per time unit for ``performance`` (ignoring the floor)."""
        return self.factor * performance**self.exponent
