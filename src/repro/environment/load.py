"""Initial (non-dedicated) load generation.

Nodes are non-dedicated: at the start of a scheduling cycle a fraction of
each node's interval is already occupied by local and high-priority jobs.
Section 3.1 fixes the generative model:

* the load level of each node is drawn from a hypergeometric distribution
  mapped onto [10%, 50%];
* local tasks have a minimum length (10 model time units in the paper —
  the value that explains why ``MinFinish`` can still start at t = 0).

The generator decomposes a node's interval into an alternating sequence of
busy chunks and free gaps whose totals match the drawn load level exactly,
then randomizes the arrangement.  The number of local jobs is proportional
to the busy time (one job per ``mean_job_length`` on average), so longer
scheduling intervals carry proportionally more local jobs and publish
proportionally more slots — the linear slot-count growth of the paper's
Table 2.  The free gaps become the slots offered to the metascheduler.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.environment.distributions import hypergeometric_fraction, partition_total
from repro.model.errors import ConfigurationError
from repro.model.resource import CpuNode
from repro.model.timeline import Timeline

#: Paper values (Section 3.1).
DEFAULT_LOAD_RANGE = (0.10, 0.50)
DEFAULT_MIN_LOCAL_JOB_LENGTH = 10.0
#: Average local-job length.  Calibrated so that a 100-node environment on
#: [0, 600] publishes roughly 470 slots (the paper's Table 2 reports 472.6)
#: and the count grows linearly with the interval length.
DEFAULT_MEAN_LOCAL_JOB_LENGTH = 42.0


@dataclass(frozen=True)
class LoadModel:
    """Configuration of the initial-load generator."""

    load_range: tuple[float, float] = DEFAULT_LOAD_RANGE
    min_job_length: float = DEFAULT_MIN_LOCAL_JOB_LENGTH
    mean_job_length: float = DEFAULT_MEAN_LOCAL_JOB_LENGTH

    def __post_init__(self) -> None:
        low, high = self.load_range
        if not 0.0 <= low <= high < 1.0:
            raise ConfigurationError(f"invalid load range {self.load_range}")
        if self.min_job_length <= 0:
            raise ConfigurationError(
                f"min_job_length must be positive, got {self.min_job_length}"
            )
        if self.mean_job_length < self.min_job_length:
            raise ConfigurationError(
                f"mean_job_length ({self.mean_job_length}) must be >= "
                f"min_job_length ({self.min_job_length})"
            )

    def draw_load_level(self, rng: np.random.Generator) -> float:
        """The node's initial utilization, hypergeometric over the range."""
        low, high = self.load_range
        return hypergeometric_fraction(rng, low, high)

    def draw_job_count(self, busy_total: float, rng: np.random.Generator) -> int:
        """Number of local jobs: ~``busy_total / mean_job_length`` ± 1."""
        upper = int(busy_total // self.min_job_length)
        if upper < 1:
            return 0
        expected = busy_total / self.mean_job_length
        jitter = int(rng.integers(-1, 2))
        return int(np.clip(round(expected) + jitter, 1, upper))

    def populate(self, timeline: Timeline, rng: np.random.Generator) -> float:
        """Fill a node timeline with local jobs; returns the load level used.

        The decomposition is exact: busy chunks sum to ``level * interval``
        and the interleaved free gaps to the complement, so the generated
        utilization equals the drawn level (up to float rounding).  Busy
        chunks respect the minimum local job length; free gaps may have any
        positive length (gaps shorter than a task are simply never selected
        by the window search).
        """
        interval = timeline.interval_end - timeline.interval_start
        level = self.draw_load_level(rng)
        busy_total = level * interval
        job_count = self.draw_job_count(busy_total, rng)
        if job_count == 0:
            # Load level too small for even one minimal local job: the node
            # stays empty this cycle.
            return 0.0
        busy_chunks = partition_total(rng, busy_total, job_count, self.min_job_length)

        free_total = interval - busy_total
        gap_count = job_count + 1
        gaps = partition_total(rng, free_total, gap_count, 0.0)
        # A node may start or end with a busy chunk: zero out the first
        # and/or last gap with probability proportional to the busy share.
        if rng.random() < level:
            gaps[-1] += gaps[0]
            gaps[0] = 0.0
        if rng.random() < level:
            gaps[0] += gaps[-1]
            gaps[-1] = 0.0

        cursor = timeline.interval_start
        for index, chunk in enumerate(busy_chunks):
            cursor += gaps[index]
            timeline.add_busy(cursor, min(cursor + chunk, timeline.interval_end))
            cursor += chunk
        return level


def build_timeline(
    node: CpuNode,
    interval_start: float,
    interval_end: float,
    model: LoadModel,
    rng: np.random.Generator,
) -> Timeline:
    """Convenience helper: a freshly loaded timeline for one node."""
    timeline = Timeline(node, interval_start, interval_end)
    model.populate(timeline, rng)
    return timeline
