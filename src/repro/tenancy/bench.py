"""Fairness-and-revenue benchmark of the tenancy layer.

One aggressive tenant (the *hog*) submits half of an overloaded arrival
stream while ``small_tenants`` split the other half.  The identical
stream runs twice through the same broker configuration — once with the
legacy FIFO cycle drain, once with DRF ordering — with credits and
utilization pricing live in both runs.  The figure of merit is Jain's
fairness index over the per-tenant committed node-seconds: under FIFO
the hog's queue position buys it the capacity, under DRF the sorter
serves the tenant with the smallest dominant share first, so the small
tenants' share (and the index) must rise.

Refuse-to-record gates, in the spirit of the other benches:

* both runs' traces must pass the :class:`TraceValidator` drained laws
  (including the credit-conservation replay), and both ledgers must
  pass :meth:`~repro.tenancy.ledger.CreditLedger.assert_conservation`;
* the stream must actually be contended (somebody's jobs dropped) —
  an uncontended pool makes every ordering trivially fair;
* DRF's Jain index must strictly beat FIFO's, or nothing is recorded.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence


class TenancyGateError(RuntimeError):
    """A refuse-to-record gate failed; the payload must not be written."""


def _assign_owners(arrivals, small_tenants: Sequence[str]):
    """Alternate hog / small-tenant ownership over one arrival stream.

    Even indices belong to the hog (half the demand from one account),
    odd indices round-robin across the small tenants, so at every point
    in the backlog the hog has as many queued jobs as everyone else
    combined.
    """
    owned = []
    small_index = 0
    for index, (arrival_time, job) in enumerate(arrivals):
        if index % 2 == 0:
            owner = "hog"
        else:
            owner = small_tenants[small_index % len(small_tenants)]
            small_index += 1
        owned.append((arrival_time, replace(job, owner=owner)))
    return owned


def _waves(arrivals, wave: int):
    """Chunk an arrival stream into bursts of ``wave`` jobs.

    All jobs of one burst are submitted back-to-back at the burst's
    first arrival time before any cycle runs, so the queue actually
    backs up past the batch size — the only regime where the cycle
    drain's *selection* (and not merely its order) can differ between
    FIFO and DRF.
    """
    chunks = []
    for start in range(0, len(arrivals), wave):
        chunk = arrivals[start : start + wave]
        chunks.append((chunk[0][0], [job for _, job in chunk]))
    return chunks


def _run_ordering(
    ordering: str,
    waves,
    node_count: int,
    env_seed: int,
    credit: float,
    batch_size: int,
) -> dict[str, object]:
    from repro.analysis.fairness import jain_index
    from repro.environment import EnvironmentConfig, EnvironmentGenerator
    from repro.service.broker import BrokerService
    from repro.service.config import ServiceConfig
    from repro.service.events import EventType
    from repro.service.tracing import TraceValidator
    from repro.tenancy.config import TenancyConfig

    pool = (
        EnvironmentGenerator(
            EnvironmentConfig(node_count=node_count, seed=env_seed)
        )
        .generate()
        .slot_pool()
    )
    tenancy = TenancyConfig(ordering=ordering, default_credit=credit)
    validator = TraceValidator()
    broker = BrokerService(
        pool,
        config=ServiceConfig(
            batch_size=batch_size,
            check_invariants=False,
            tenancy=tenancy,
        ),
        sinks=[validator],
    )
    with broker:
        for wave_time, wave_jobs in waves:
            broker.advance_to(wave_time)
            for job in wave_jobs:
                broker.submit(job)
            broker.pump()
        broker.drain()
        stats = broker.stats
        manager = broker.tenancy
        assert manager is not None
        # Gate 1a: the trace replay must agree with itself end to end.
        validator.check(expect_drained=True)
        # Gate 1b: the live ledger must balance independently of the trace.
        manager.ledger.assert_conservation()
        shares = {
            name: seconds
            for name, seconds in sorted(manager.ledger.committed_shares().items())
        }
        return {
            "ordering": ordering,
            "jain_index": round(jain_index(list(shares.values())), 6),
            "revenue": round(manager.ledger.total_revenue(), 3),
            "price_multiplier": round(manager.price_multiplier, 6),
            "scheduled": stats.scheduled,
            "retired": stats.retired,
            "dropped": stats.dropped,
            "rejected": stats.rejected,
            "insufficient_credit": validator.counts[
                EventType.INSUFFICIENT_CREDIT
            ],
            "credits_debited": validator.counts[EventType.CREDIT_DEBITED],
            "credits_refunded": validator.counts[EventType.CREDIT_REFUNDED],
            "committed_node_seconds": {
                name: round(seconds, 3) for name, seconds in shares.items()
            },
        }


def bench_tenancy(
    jobs: int = 160,
    node_count: int = 16,
    small_tenants: int = 4,
    arrival_rate: float = 8.0,
    wave: int = 24,
    seed: int = 2013,
    env_seed: int = 42,
    credit: float = 1_000_000.0,
    batch_size: int = 4,
    orderings: Optional[Sequence[str]] = None,
) -> dict[str, object]:
    """Run the hog-vs-small-tenants mix under each cycle ordering.

    Raises :class:`TenancyGateError` — recording nothing — unless the
    stream was contended and DRF strictly improved Jain's index over
    FIFO.
    """
    from repro.core.vectorized import scan_counters
    from repro.hostinfo import host_payload
    from repro.simulation.jobgen import JobGenerator

    names = [f"tenant-{index + 1}" for index in range(small_tenants)]
    arrivals = _assign_owners(
        JobGenerator(seed=seed).iter_arrivals(jobs, rate=arrival_rate), names
    )
    waves = _waves(arrivals, wave)
    if orderings is None:
        orderings = ("fifo", "drf")
    results = [
        _run_ordering(
            ordering,
            waves,
            node_count=node_count,
            env_seed=env_seed,
            credit=credit,
            batch_size=batch_size,
        )
        for ordering in orderings
    ]
    by_ordering = {str(row["ordering"]): row for row in results}
    if {"fifo", "drf"} <= set(by_ordering):
        fifo, drf = by_ordering["fifo"], by_ordering["drf"]
        if int(fifo["dropped"]) + int(drf["dropped"]) == 0:
            raise TenancyGateError(
                "the stream was not contended (no drops under either "
                "ordering): every ordering is trivially fair, nothing to "
                "record — raise the load or shrink the pool"
            )
        if float(drf["jain_index"]) <= float(fifo["jain_index"]):
            raise TenancyGateError(
                f"DRF Jain index {drf['jain_index']} did not beat FIFO's "
                f"{fifo['jain_index']}: the sorter bought no fairness on "
                "this mix, nothing to record"
            )
    return {
        "benchmark": "tenancy",
        "config": {
            "jobs": jobs,
            "node_count": node_count,
            "small_tenants": small_tenants,
            "arrival_rate": arrival_rate,
            "wave": wave,
            "seed": seed,
            "env_seed": env_seed,
            "credit": credit,
            "batch_size": batch_size,
            "orderings": list(orderings),
        },
        "host": host_payload(parallel_target=2),
        "scan_kernel": dict(scan_counters),
        "results": results,
    }
