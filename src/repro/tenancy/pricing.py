"""Utilization-driven price multiplier.

The environment's :class:`MarketPricing` assigns each slot a *static*
power-law price at generation time.  The tenancy layer scales those
static prices with one live multiplier, updated once per scheduling
cycle from an EWMA of pool utilization (committed / available
node-seconds): a hot pool gets expensive, an idle pool drifts back to
the static floor.

The multiplier is applied *uniformly*, which admits an exact algebraic
shortcut: a window costing ``C`` at static prices costs ``m * C`` live,
so "is the window within budget ``b`` at live prices" is precisely "is
``C <= b / m``".  The broker therefore never mutates slot prices — it
scales each batch job's budget by ``1/m`` before the phase-1/phase-2
scans and scales admission's cheapest-feasible lower bound by ``m``,
and both the feasibility oracle and the scans see live prices without
touching the columnar snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tenancy.config import TenancyConfig


@dataclass
class PricingEngine:
    """EWMA utilization tracker -> clamped price multiplier."""

    config: TenancyConfig
    _ewma: float = 0.0
    _primed: bool = False
    _cycles: int = field(default=0)

    @property
    def utilization(self) -> float:
        """The current EWMA utilization estimate in [0, 1]."""
        return self._ewma

    @property
    def multiplier(self) -> float:
        """The live price multiplier: ``clamp(1 + gain * ewma)``."""
        if not self.config.pricing:
            return 1.0
        raw = 1.0 + self.config.pricing_gain * self._ewma
        return min(self.config.max_multiplier, max(self.config.min_multiplier, raw))

    def observe_cycle(self, held_node_seconds: float, free_node_seconds: float) -> float:
        """Fold one cycle's utilization sample into the EWMA.

        ``held`` is the node-seconds committed to live windows, ``free``
        the node-seconds still offered by the pool snapshot.  Returns
        the new multiplier.
        """
        total = held_node_seconds + free_node_seconds
        sample = 0.0 if total <= 0 else held_node_seconds / total
        sample = min(1.0, max(0.0, sample))
        if not self._primed:
            # Seed the EWMA with the first sample instead of decaying
            # from zero, so short runs are not biased toward idleness.
            self._ewma = sample
            self._primed = True
        else:
            decay = self.config.pricing_decay
            self._ewma = decay * self._ewma + (1.0 - decay) * sample
        self._cycles += 1
        return self.multiplier

    def snapshot(self) -> dict:
        return {
            "utilization_ewma": self._ewma,
            "multiplier": self.multiplier,
            "cycles_observed": self._cycles,
        }
