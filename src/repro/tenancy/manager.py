"""Facade the serving stack talks to: registry + ledger + DRF + pricing.

One :class:`TenancyManager` serves a whole deployment — a single broker
owns its own, a federation builds one and shares it across every shard
broker and the co-allocator, so credit balances and the pricing EWMA
are global while each caller keeps emitting on its own (shard-tagged)
emitter.  Every method takes the caller's emitter explicitly for that
reason.

The manager never touches broker locks; callers invoke it while holding
their own lock, and the ledger's internal leaf lock makes the shared
state safe across shards.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.service.events import EventEmitter, EventType
from repro.tenancy.config import TenancyConfig
from repro.tenancy.drf import DRFSorter
from repro.tenancy.ledger import CreditLedger
from repro.tenancy.pricing import PricingEngine

if TYPE_CHECKING:
    from repro.model.job import Job
    from repro.model.window import Window
    from repro.service.queueing import BoundedJobQueue, QueuedJob


class TenancyManager:
    """Ties the ledger, sorter and pricing engine to the serving stack."""

    def __init__(self, config: TenancyConfig) -> None:
        self.config = config
        self.ledger = CreditLedger(config)
        self.pricing = PricingEngine(config)

    # -- cycle ordering ----------------------------------------------

    def drain_batch(self, queue: "BoundedJobQueue", limit: int) -> list["QueuedJob"]:
        """Pick which queued jobs enter this cycle's batch.

        ``ordering="fifo"`` preserves the legacy arrival-order drain;
        ``"drf"`` runs the Mesos sorter loop over per-tenant FIFO lanes,
        serving the tenant with the smallest dominant share of
        cumulative committed node-seconds first.  Selected entries are
        removed from the queue; everything else keeps its position.
        """
        if self.config.ordering == "fifo":
            return queue.pop_batch(limit)
        pending: dict[str, list[QueuedJob]] = {}
        for item in queue.items():
            pending.setdefault(item.job.owner, []).append(item)
        if not pending:
            return []
        sorter = DRFSorter(
            allocated=self.ledger.committed_shares(),
            weights=self.ledger.weights(),
            default_weight=self.config.default_weight,
        )
        for owner in pending:
            # Touch the account so new owners sort at zero share with
            # their registered (or default) weight.
            self.ledger.account(owner)
            sorter.weights.setdefault(owner, self.ledger.account(owner).weight)
        picked = sorter.select(
            pending,
            demand=lambda item: (
                item.job.request.node_count * item.job.request.reservation_time
            ),
            limit=limit,
        )
        return [queue.remove(item.job.job_id) for item in picked]

    # -- pricing ------------------------------------------------------

    @property
    def price_multiplier(self) -> float:
        return self.pricing.multiplier

    def observe_cycle(
        self, held_node_seconds: float, free_node_seconds: float
    ) -> float:
        return self.pricing.observe_cycle(held_node_seconds, free_node_seconds)

    # -- admission ----------------------------------------------------

    def admission_balance(self, tenant: str) -> Optional[float]:
        """The tenant's balance, or ``None`` when credits don't gate
        admission (enforcement off)."""
        if not self.config.enforce_credits:
            return None
        return self.ledger.balance(tenant)

    # -- escrow lifecycle ---------------------------------------------

    def charge_commit(
        self,
        job: "Job",
        window: "Window",
        emitter: EventEmitter,
        *,
        multiplier: Optional[float] = None,
    ) -> bool:
        """Debit the job's tenant the live window cost at commit time.

        Emits ``CREDIT_DEBITED`` on success, ``INSUFFICIENT_CREDIT`` on
        an unaffordable commit (the caller then defers the job instead
        of committing).  Returns whether the debit succeeded.
        """
        m = self.price_multiplier if multiplier is None else multiplier
        amount = window.total_cost * m
        tenant = job.owner
        ok = self.ledger.debit(
            tenant,
            job.job_id,
            amount,
            multiplier=m,
            node_seconds=window.processor_time,
        )
        if ok:
            emitter.emit(
                EventType.CREDIT_DEBITED,
                job_id=job.job_id,
                tenant=tenant,
                amount=amount,
                balance=self.ledger.balance(tenant),
            )
        else:
            emitter.emit(
                EventType.INSUFFICIENT_CREDIT,
                job_id=job.job_id,
                tenant=tenant,
                required=amount,
                balance=self.ledger.balance(tenant),
            )
        return ok

    def on_retired(self, job_id: str) -> None:
        """A window completed: settle the remaining escrow as revenue."""
        self.ledger.settle(job_id)

    def on_forfeit(
        self, job_id: str, leg_cost: float, emitter: EventEmitter
    ) -> float:
        """Legs worth ``leg_cost`` (static prices) were revoked: refund
        the configured fraction of their escrow.  Emits
        ``CREDIT_REFUNDED`` when anything flows back."""
        tenant, refund = self.ledger.refund_forfeit(job_id, leg_cost)
        if refund > 0.0:
            emitter.emit(
                EventType.CREDIT_REFUNDED,
                job_id=job_id,
                tenant=tenant,
                amount=refund,
                balance=self.ledger.balance(tenant),
                kind="forfeit",
            )
        return refund

    def on_release(self, job_id: str, emitter: EventEmitter) -> float:
        """The job's remaining window was released unrun (replan,
        abandon, co-allocation teardown): refund the whole remaining
        escrow.  Emits ``CREDIT_REFUNDED`` when anything flows back."""
        tenant, refund = self.ledger.refund_release(job_id)
        if refund > 0.0:
            emitter.emit(
                EventType.CREDIT_REFUNDED,
                job_id=job_id,
                tenant=tenant,
                amount=refund,
                balance=self.ledger.balance(tenant),
                kind="release",
            )
        return refund

    # -- introspection ------------------------------------------------

    def snapshot(self) -> dict:
        return {
            "ledger": self.ledger.snapshot(),
            "pricing": self.pricing.snapshot(),
            "ordering": self.config.ordering,
            "enforce_credits": self.config.enforce_credits,
        }
