"""Multi-tenant economics: credit ledger, DRF cycle ordering, pricing.

The subsystem is entirely opt-in: ``ServiceConfig.tenancy`` defaults to
``None`` and every broker, federation and protocol path is byte-
identical to a build without this package until a
:class:`TenancyConfig` is supplied.
"""

from repro.tenancy.bench import TenancyGateError, bench_tenancy
from repro.tenancy.config import ORDERING_NAMES, TenancyConfig, TenantSpec
from repro.tenancy.drf import DRFSorter, dominant_share
from repro.tenancy.ledger import (
    CREDIT_EPSILON,
    CreditLedger,
    LedgerError,
    TenantAccount,
)
from repro.tenancy.manager import TenancyManager
from repro.tenancy.pricing import PricingEngine

__all__ = [
    "CREDIT_EPSILON",
    "CreditLedger",
    "DRFSorter",
    "LedgerError",
    "ORDERING_NAMES",
    "PricingEngine",
    "TenancyConfig",
    "TenancyGateError",
    "TenancyManager",
    "TenantAccount",
    "TenantSpec",
    "bench_tenancy",
    "dominant_share",
]
