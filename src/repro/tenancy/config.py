"""Configuration of the multi-tenant economics layer.

One :class:`TenancyConfig` switches the whole tenant/VO layer on: it
names the registered tenants (anything unknown auto-registers with the
defaults), selects the cycle-ordering policy (DRF or the legacy FIFO
draining), and parameterises the credit ledger and the utilization-
driven pricing loop.  ``ServiceConfig.tenancy is None`` — the default —
keeps every broker and federation code path, including the event
traces, byte-identical to a build without the subsystem.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.errors import ConfigurationError

#: Cycle-ordering policies: ``drf`` serves the tenant with the smallest
#: dominant share first (the Mesos sorter), ``fifo`` preserves the
#: legacy arrival-order batch draining (used as the bench baseline).
ORDERING_NAMES = ("drf", "fifo")


@dataclass(frozen=True)
class TenantSpec:
    """One registered tenant: its credit endowment and DRF weight."""

    name: str
    credit: float
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("tenant name must be a non-empty string")
        if self.credit < 0:
            raise ConfigurationError(
                f"tenant credit must be >= 0, got {self.credit}"
            )
        if self.weight <= 0:
            raise ConfigurationError(
                f"tenant weight must be positive, got {self.weight}"
            )


@dataclass(frozen=True)
class TenancyConfig:
    """Parameters of the tenant registry, ledger, sorter and pricing.

    Parameters
    ----------
    tenants:
        Pre-registered tenants.  Jobs from owners not listed here
        auto-register with ``default_credit`` / ``default_weight`` on
        first contact, so a tenancy-enabled broker never refuses an
        unknown owner outright.
    default_credit:
        Credit endowment of auto-registered tenants.
    default_weight:
        DRF weight of auto-registered tenants (higher = entitled to a
        larger dominant share before yielding the cycle to others).
    ordering:
        ``"drf"`` drains each cycle's batch by smallest dominant share
        of committed node-seconds (the Mesos sorter port);  ``"fifo"``
        keeps arrival-order draining — same credit accounting, legacy
        ordering — which is the bench baseline DRF must beat.
    enforce_credits:
        When ``True``, submissions whose tenant cannot afford the
        cheapest feasible window are rejected (``INSUFFICIENT_CREDIT``)
        and commits that would overdraw the account are deferred
        instead of executed.  ``False`` keeps the ledger as a pure
        observer (accounts may not go negative — unaffordable commits
        still defer — but admission stops gating).
    forfeit_refund:
        Fraction of a revoked (forfeited) leg's escrowed cost refunded
        to the tenant; the remainder is spent (the disruption's cost is
        shared between tenant and provider).
    pricing:
        Whether the utilization multiplier moves at all.  ``False``
        pins the multiplier at 1.0 — static power-law prices.
    pricing_decay:
        EWMA decay of the utilization estimate: the previous estimate
        keeps this weight, the newest cycle's committed/available ratio
        gets ``1 - decay``.
    pricing_gain:
        Sensitivity of the multiplier to utilization: ``multiplier =
        1 + gain * utilization`` before clamping.
    min_multiplier / max_multiplier:
        Clamp bounds of the live price multiplier.
    """

    tenants: tuple[TenantSpec, ...] = ()
    default_credit: float = 100_000.0
    default_weight: float = 1.0
    ordering: str = "drf"
    enforce_credits: bool = True
    forfeit_refund: float = 0.5
    pricing: bool = True
    pricing_decay: float = 0.7
    pricing_gain: float = 1.0
    min_multiplier: float = 1.0
    max_multiplier: float = 3.0

    def __post_init__(self) -> None:
        names = [spec.name for spec in self.tenants]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate tenant names in {names}")
        if self.default_credit < 0:
            raise ConfigurationError(
                f"default_credit must be >= 0, got {self.default_credit}"
            )
        if self.default_weight <= 0:
            raise ConfigurationError(
                f"default_weight must be positive, got {self.default_weight}"
            )
        if self.ordering not in ORDERING_NAMES:
            raise ConfigurationError(
                f"unknown tenancy ordering {self.ordering!r} "
                f"(choose from {ORDERING_NAMES})"
            )
        if not 0.0 <= self.forfeit_refund <= 1.0:
            raise ConfigurationError(
                f"forfeit_refund must be in [0, 1], got {self.forfeit_refund}"
            )
        if not 0.0 < self.pricing_decay < 1.0:
            raise ConfigurationError(
                f"pricing_decay must be in (0, 1), got {self.pricing_decay}"
            )
        if self.pricing_gain < 0:
            raise ConfigurationError(
                f"pricing_gain must be >= 0, got {self.pricing_gain}"
            )
        if self.min_multiplier <= 0:
            raise ConfigurationError(
                f"min_multiplier must be positive, got {self.min_multiplier}"
            )
        if self.max_multiplier < self.min_multiplier:
            raise ConfigurationError(
                f"max_multiplier ({self.max_multiplier}) must be >= "
                f"min_multiplier ({self.min_multiplier})"
            )
