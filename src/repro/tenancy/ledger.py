"""Per-tenant credit accounts with escrow-style window accounting.

The ledger debits a tenant the full (multiplier-scaled) window cost when
the broker commits the window — the amount sits in *escrow* against the
job.  From there:

- a clean retirement *settles* the escrow: the whole amount becomes
  provider revenue (``spent``);
- a revocation forfeits the revoked legs: a configurable fraction of the
  legs' escrowed cost is refunded to the tenant, the rest is spent;
- a replan or abandonment refunds whatever escrow remains.

The conservation law is exact by construction and re-checked on demand:
for every account ``balance == initial - debited + refunded`` and
globally ``sum(debits) == sum(refunds) + sum(spent) + open escrow``,
with every balance non-negative.  The :class:`TraceValidator` replays
the same law from the emitted ``CREDIT_*`` events, so the ledger and
the trace must agree independently.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.tenancy.config import TenancyConfig

#: Absolute slack for floating-point conservation checks.
CREDIT_EPSILON = 1e-6


class LedgerError(RuntimeError):
    """A conservation law failed or an escrow operation was misused."""


@dataclass
class TenantAccount:
    """One tenant's running totals.  All amounts are credit units."""

    name: str
    weight: float
    initial_credit: float
    balance: float
    debited: float = 0.0
    refunded: float = 0.0
    spent: float = 0.0
    #: Cumulative node-seconds committed on behalf of this tenant —
    #: the DRF allocation basis (monotone, never decremented).
    committed_node_seconds: float = 0.0
    #: Node-seconds currently held by live windows of this tenant.
    held_node_seconds: float = 0.0

    def snapshot(self) -> dict:
        return {
            "name": self.name,
            "weight": self.weight,
            "initial_credit": self.initial_credit,
            "balance": self.balance,
            "debited": self.debited,
            "refunded": self.refunded,
            "spent": self.spent,
            "committed_node_seconds": self.committed_node_seconds,
            "held_node_seconds": self.held_node_seconds,
        }


@dataclass
class _Escrow:
    """Credit held against one live job, plus the price multiplier the
    job was committed under (leg refunds must use the same scale)."""

    tenant: str
    remaining: float
    multiplier: float
    node_seconds: float = 0.0


@dataclass
class CreditLedger:
    """Thread-safe tenant registry + escrow accounting.

    One ledger instance is shared by every broker of a federation, so
    all mutation happens under an internal lock (brokers already hold
    their own locks; the ledger lock is leaf-level and never held while
    calling out).
    """

    config: TenancyConfig
    _accounts: dict[str, TenantAccount] = field(default_factory=dict)
    _escrow: dict[str, _Escrow] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def __post_init__(self) -> None:
        for spec in self.config.tenants:
            self._accounts[spec.name] = TenantAccount(
                name=spec.name,
                weight=spec.weight,
                initial_credit=spec.credit,
                balance=spec.credit,
            )

    # -- registry ----------------------------------------------------

    def account(self, tenant: str) -> TenantAccount:
        """The tenant's account, auto-registered on first contact."""
        with self._lock:
            return self._account_locked(tenant)

    def _account_locked(self, tenant: str) -> TenantAccount:
        acct = self._accounts.get(tenant)
        if acct is None:
            acct = TenantAccount(
                name=tenant,
                weight=self.config.default_weight,
                initial_credit=self.config.default_credit,
                balance=self.config.default_credit,
            )
            self._accounts[tenant] = acct
        return acct

    def balance(self, tenant: str) -> float:
        return self.account(tenant).balance

    def tenants(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._accounts))

    # -- escrow operations -------------------------------------------

    def debit(
        self,
        tenant: str,
        job_id: str,
        amount: float,
        *,
        multiplier: float = 1.0,
        node_seconds: float = 0.0,
    ) -> bool:
        """Debit ``amount`` into escrow against ``job_id``.

        Returns ``False`` — leaving every total untouched — when the
        tenant cannot afford the amount.  An unaffordable commit is
        never allowed to overdraw the account, even with enforcement
        off, because a negative balance breaks the conservation law.
        """
        if amount < 0:
            raise LedgerError(f"negative debit {amount} for {job_id}")
        with self._lock:
            if job_id in self._escrow:
                raise LedgerError(f"job {job_id} already holds escrow")
            acct = self._account_locked(tenant)
            if acct.balance + CREDIT_EPSILON < amount:
                return False
            acct.balance -= amount
            acct.debited += amount
            acct.committed_node_seconds += node_seconds
            acct.held_node_seconds += node_seconds
            self._escrow[job_id] = _Escrow(
                tenant=tenant,
                remaining=amount,
                multiplier=multiplier,
                node_seconds=node_seconds,
            )
            return True

    def multiplier(self, job_id: str) -> float:
        """The price multiplier ``job_id`` was committed under."""
        with self._lock:
            escrow = self._escrow.get(job_id)
            return 1.0 if escrow is None else escrow.multiplier

    def holds_escrow(self, job_id: str) -> bool:
        with self._lock:
            return job_id in self._escrow

    def refund_forfeit(self, job_id: str, leg_cost: float) -> tuple[str, float]:
        """A revocation forfeited legs worth ``leg_cost`` (at commit-time
        prices, pre-multiplier).  Refund ``forfeit_refund`` of the scaled
        cost, spend the rest.  Returns ``(tenant, refunded_amount)``;
        ``("", 0.0)`` when the job holds no escrow."""
        if leg_cost < 0:
            raise LedgerError(f"negative forfeit cost {leg_cost} for {job_id}")
        with self._lock:
            escrow = self._escrow.get(job_id)
            if escrow is None:
                return "", 0.0
            take = min(escrow.remaining, leg_cost * escrow.multiplier)
            refund = take * self.config.forfeit_refund
            escrow.remaining -= take
            acct = self._account_locked(escrow.tenant)
            acct.balance += refund
            acct.refunded += refund
            acct.spent += take - refund
            if escrow.remaining <= CREDIT_EPSILON:
                leftover = escrow.remaining
                if leftover > 0.0:
                    # Absorb float dust into revenue so escrow closes exactly.
                    acct.spent += leftover
                acct.held_node_seconds = max(
                    0.0, acct.held_node_seconds - escrow.node_seconds
                )
                del self._escrow[job_id]
            return escrow.tenant, refund

    def refund_release(self, job_id: str) -> tuple[str, float]:
        """The job's remaining window was released without running
        (replan / abandon / shard-loss release): refund the whole
        remaining escrow.  Returns ``(tenant, refunded_amount)``."""
        with self._lock:
            escrow = self._escrow.pop(job_id, None)
            if escrow is None:
                return "", 0.0
            acct = self._account_locked(escrow.tenant)
            acct.balance += escrow.remaining
            acct.refunded += escrow.remaining
            acct.held_node_seconds = max(
                0.0, acct.held_node_seconds - escrow.node_seconds
            )
            return escrow.tenant, escrow.remaining

    def settle(self, job_id: str) -> tuple[str, float]:
        """The job retired cleanly: the remaining escrow becomes
        provider revenue.  Returns ``(tenant, settled_amount)``."""
        with self._lock:
            escrow = self._escrow.pop(job_id, None)
            if escrow is None:
                return "", 0.0
            acct = self._account_locked(escrow.tenant)
            acct.spent += escrow.remaining
            acct.held_node_seconds = max(
                0.0, acct.held_node_seconds - escrow.node_seconds
            )
            return escrow.tenant, escrow.remaining

    # -- introspection ------------------------------------------------

    def open_escrow(self) -> float:
        with self._lock:
            return sum(e.remaining for e in self._escrow.values())

    def total_revenue(self) -> float:
        with self._lock:
            return sum(a.spent for a in self._accounts.values())

    def committed_shares(self) -> dict[str, float]:
        """Cumulative committed node-seconds per tenant (DRF basis)."""
        with self._lock:
            return {
                name: acct.committed_node_seconds
                for name, acct in self._accounts.items()
            }

    def weights(self) -> dict[str, float]:
        with self._lock:
            return {name: acct.weight for name, acct in self._accounts.items()}

    def snapshot(self) -> dict:
        with self._lock:
            accounts = {
                name: self._accounts[name].snapshot()
                for name in sorted(self._accounts)
            }
            open_escrow = sum(e.remaining for e in self._escrow.values())
            return {
                "accounts": accounts,
                "open_escrow": open_escrow,
                "open_jobs": len(self._escrow),
                "total_debited": sum(a["debited"] for a in accounts.values()),
                "total_refunded": sum(a["refunded"] for a in accounts.values()),
                "total_spent": sum(a["spent"] for a in accounts.values()),
            }

    def assert_conservation(self) -> None:
        """Raise :class:`LedgerError` unless every conservation law
        holds: per-account ``balance == initial - debited + refunded``
        and ``balance >= 0``; globally ``debited == refunded + spent +
        open escrow``."""
        with self._lock:
            open_escrow = sum(e.remaining for e in self._escrow.values())
            debited = refunded = spent = 0.0
            for name, acct in self._accounts.items():
                expected = acct.initial_credit - acct.debited + acct.refunded
                if abs(acct.balance - expected) > CREDIT_EPSILON:
                    raise LedgerError(
                        f"tenant {name}: balance {acct.balance} != "
                        f"initial - debited + refunded = {expected}"
                    )
                if acct.balance < -CREDIT_EPSILON:
                    raise LedgerError(
                        f"tenant {name}: negative balance {acct.balance}"
                    )
                debited += acct.debited
                refunded += acct.refunded
                spent += acct.spent
            if abs(debited - (refunded + spent + open_escrow)) > max(
                CREDIT_EPSILON, 1e-9 * max(debited, 1.0)
            ):
                raise LedgerError(
                    f"ledger imbalance: debited {debited} != refunded "
                    f"{refunded} + spent {spent} + open escrow {open_escrow}"
                )
