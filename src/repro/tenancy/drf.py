"""Dominant Resource Fairness ordering of the scheduling cycle.

A line-for-line port of the Mesos allocator's DRF sorter
(``src/master/allocator/sorter/drf/sorter.cpp:567-594``): each client's
*dominant share* is its allocation of its dominant resource as a
fraction of the total pool, divided by the client's weight, and clients
are served in ascending ``(share, name)`` order — the name breaking
ties deterministically.  The serving loop re-computes the argmin after
every pick because serving a client grows its share.

The single scarce resource here is node-seconds, so the dominant share
degenerates to ``allocated_node_seconds / weight`` (the pool-capacity
normalisation is a positive constant that never changes the argmin, so
the sorter skips it and stays capacity-agnostic).  The allocation basis
is *cumulative committed* node-seconds — monotone, so a tenant that got
a large window early keeps yielding cycles until the others catch up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence, TypeVar

T = TypeVar("T")


def dominant_share(allocated: float, weight: float) -> float:
    """One client's dominant share: allocation scaled by 1/weight.

    Mirrors ``DRFSorter::calculateShare`` — ``share = max_r(alloc_r /
    total_r) / weight`` — restricted to the single node-seconds
    resource with the constant total factored out.
    """
    if weight <= 0:
        raise ValueError(f"weight must be positive, got {weight}")
    return allocated / weight


@dataclass
class DRFSorter:
    """Order pending items by their tenants' dominant shares.

    ``allocated`` seeds each tenant's running allocation (cumulative
    committed node-seconds from the ledger); ``weights`` the DRF
    weights.  Unknown tenants default to zero allocation and
    ``default_weight``.
    """

    allocated: dict[str, float] = field(default_factory=dict)
    weights: dict[str, float] = field(default_factory=dict)
    default_weight: float = 1.0

    def share(self, tenant: str) -> float:
        return dominant_share(
            self.allocated.get(tenant, 0.0),
            self.weights.get(tenant, self.default_weight),
        )

    def sort(self, tenants: Sequence[str]) -> list[str]:
        """Tenants in ascending ``(share, name)`` order — the sorter's
        ``sort()`` output before any serving updates shares."""
        return sorted(set(tenants), key=lambda name: (self.share(name), name))

    def select(
        self,
        pending: dict[str, list[T]],
        demand: Callable[[T], float],
        limit: int,
    ) -> list[T]:
        """Serve up to ``limit`` items, one at a time, always from the
        tenant with the smallest current dominant share.

        ``pending`` maps tenant -> FIFO list of that tenant's queued
        items (consumed in place); ``demand(item)`` is the projected
        node-seconds the item would commit.  This is the Mesos
        allocation loop: pick argmin client, serve its head item, add
        the demand to its allocation, re-evaluate.
        """
        served: list[T] = []
        while len(served) < limit:
            candidates = [name for name, items in pending.items() if items]
            if not candidates:
                break
            best = min(candidates, key=lambda name: (self.share(name), name))
            item = pending[best].pop(0)
            served.append(item)
            self.allocated[best] = self.allocated.get(best, 0.0) + demand(item)
        return served
