"""JSON serialization of environments, windows and experiment results.

Reproducibility plumbing: a generated environment (the exact slot list an
experiment ran on), the windows an algorithm selected, and aggregate
comparison results can all be written to JSON and read back bit-exactly.
Used to archive experiment inputs, to ship failing cases into tests, and
by the CLI's ``generate``/``schedule`` subcommands.

Only plain-JSON types are emitted, so the files are diffable and
language-neutral.
"""

from __future__ import annotations

import json
from typing import Any, Union

from repro.core.criteria import Criterion
from repro.environment.generator import Environment, EnvironmentConfig
from repro.environment.load import LoadModel
from repro.environment.pricing import MarketPricing
from repro.model.errors import ModelError
from repro.model.job import Job, ResourceRequest
from repro.model.resource import CpuNode, NodeSpec
from repro.model.slot import Slot
from repro.model.timeline import Timeline
from repro.model.window import Window, WindowSlot
from repro.simulation.runner import ComparisonResult

FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Nodes
# ----------------------------------------------------------------------
def node_to_dict(node: CpuNode) -> dict[str, Any]:
    """Plain-JSON form of a node."""
    return {
        "node_id": node.node_id,
        "performance": node.performance,
        "price_per_unit": node.price_per_unit,
        "spec": {
            "clock_speed": node.spec.clock_speed,
            "ram": node.spec.ram,
            "disk": node.spec.disk,
            "os": node.spec.os,
        },
    }


def node_from_dict(data: dict[str, Any]) -> CpuNode:
    """Inverse of :func:`node_to_dict`."""
    spec = data.get("spec", {})
    return CpuNode(
        node_id=int(data["node_id"]),
        performance=float(data["performance"]),
        price_per_unit=float(data["price_per_unit"]),
        spec=NodeSpec(
            clock_speed=float(spec.get("clock_speed", 1.0)),
            ram=int(spec.get("ram", 4096)),
            disk=int(spec.get("disk", 100)),
            os=str(spec.get("os", "linux")),
        ),
    )


# ----------------------------------------------------------------------
# Environments
# ----------------------------------------------------------------------
def environment_to_dict(environment: Environment) -> dict[str, Any]:
    """Plain-JSON form of an environment (config + nodes + busy intervals)."""
    config = environment.config
    return {
        "format_version": FORMAT_VERSION,
        "config": {
            "node_count": config.node_count,
            "interval_start": config.interval_start,
            "interval_end": config.interval_end,
            "performance_range": list(config.performance_range),
            "pricing": {
                "factor": config.pricing.factor,
                "exponent": config.pricing.exponent,
                "sigma": config.pricing.sigma,
                "floor": config.pricing.floor,
            },
            "load": {
                "load_range": list(config.load.load_range),
                "min_job_length": config.load.min_job_length,
                "mean_job_length": config.load.mean_job_length,
            },
            "seed": config.seed,
        },
        "nodes": [node_to_dict(node) for node in environment.nodes],
        "busy": {
            str(node_id): timeline.busy_intervals
            for node_id, timeline in environment.timelines.items()
        },
    }


def environment_from_dict(data: dict[str, Any]) -> Environment:
    """Inverse of :func:`environment_to_dict`."""
    if data.get("format_version") != FORMAT_VERSION:
        raise ModelError(
            f"unsupported environment format version {data.get('format_version')!r}"
        )
    raw = data["config"]
    config = EnvironmentConfig(
        node_count=int(raw["node_count"]),
        interval_start=float(raw["interval_start"]),
        interval_end=float(raw["interval_end"]),
        performance_range=tuple(raw["performance_range"]),
        pricing=MarketPricing(**raw["pricing"]),
        load=LoadModel(
            load_range=tuple(raw["load"]["load_range"]),
            min_job_length=float(raw["load"]["min_job_length"]),
            mean_job_length=float(raw["load"]["mean_job_length"]),
        ),
        seed=raw.get("seed"),
    )
    nodes = [node_from_dict(entry) for entry in data["nodes"]]
    timelines = {}
    for node in nodes:
        timeline = Timeline(node, config.interval_start, config.interval_end)
        for start, end in data["busy"].get(str(node.node_id), []):
            timeline.add_busy(float(start), float(end))
        timelines[node.node_id] = timeline
    return Environment(config=config, nodes=nodes, timelines=timelines)


# ----------------------------------------------------------------------
# Jobs
# ----------------------------------------------------------------------
def job_to_dict(job: Job) -> dict[str, Any]:
    """Plain-JSON form of a job (the federation wire format).

    Optional request fields at their defaults are omitted, so the frames
    the protocol ships stay small for typical jobs.
    """
    request = job.request
    payload: dict[str, Any] = {
        "job_id": job.job_id,
        "request": {
            "node_count": request.node_count,
            "reservation_time": request.reservation_time,
        },
    }
    fields = payload["request"]
    if request.budget is not None:
        fields["budget"] = request.budget
    if request.max_price_per_unit is not None:
        fields["max_price_per_unit"] = request.max_price_per_unit
    if request.reference_performance != 1.0:
        fields["reference_performance"] = request.reference_performance
    if request.min_performance:
        fields["min_performance"] = request.min_performance
    if request.min_clock_speed:
        fields["min_clock_speed"] = request.min_clock_speed
    if request.min_ram:
        fields["min_ram"] = request.min_ram
    if request.min_disk:
        fields["min_disk"] = request.min_disk
    if request.required_os is not None:
        fields["required_os"] = request.required_os
    if request.deadline is not None:
        fields["deadline"] = request.deadline
    if job.priority:
        payload["priority"] = job.priority
    if job.owner != "anonymous":
        payload["owner"] = job.owner
    return payload


def job_from_dict(data: dict[str, Any]) -> Job:
    """Inverse of :func:`job_to_dict`.

    Malformed payloads surface as :class:`ModelError` naming the missing
    field, so the server can turn a bad frame into an error response
    instead of a traceback.
    """
    try:
        raw = data["request"]
        request = ResourceRequest(
            node_count=int(raw["node_count"]),
            reservation_time=float(raw["reservation_time"]),
            budget=None if raw.get("budget") is None else float(raw["budget"]),
            max_price_per_unit=(
                None
                if raw.get("max_price_per_unit") is None
                else float(raw["max_price_per_unit"])
            ),
            reference_performance=float(raw.get("reference_performance", 1.0)),
            min_performance=float(raw.get("min_performance", 0.0)),
            min_clock_speed=float(raw.get("min_clock_speed", 0.0)),
            min_ram=int(raw.get("min_ram", 0)),
            min_disk=int(raw.get("min_disk", 0)),
            required_os=(
                None
                if raw.get("required_os") is None
                else str(raw["required_os"])
            ),
            deadline=(
                None if raw.get("deadline") is None else float(raw["deadline"])
            ),
        )
        return Job(
            job_id=str(data["job_id"]),
            request=request,
            priority=int(data.get("priority", 0)),
            owner=str(data.get("owner", "anonymous")),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise ModelError(f"malformed job payload: {error!r}") from None


# ----------------------------------------------------------------------
# Windows
# ----------------------------------------------------------------------
def window_to_dict(window: Window) -> dict[str, Any]:
    """Plain-JSON form of a window and its legs."""
    return {
        "start": window.start,
        "slots": [
            {
                "node": node_to_dict(ws.slot.node),
                "slot_start": ws.slot.start,
                "slot_end": ws.slot.end,
                "required_time": ws.required_time,
                "cost": ws.cost,
            }
            for ws in window.slots
        ],
    }


def window_from_dict(data: dict[str, Any]) -> Window:
    """Inverse of :func:`window_to_dict`."""
    legs = []
    for entry in data["slots"]:
        node = node_from_dict(entry["node"])
        slot = Slot(node, float(entry["slot_start"]), float(entry["slot_end"]))
        legs.append(
            WindowSlot(
                slot=slot,
                required_time=float(entry["required_time"]),
                cost=float(entry["cost"]),
            )
        )
    return Window(start=float(data["start"]), slots=tuple(legs))


# ----------------------------------------------------------------------
# Comparison results
# ----------------------------------------------------------------------
def comparison_to_dict(result: ComparisonResult) -> dict[str, Any]:
    """Aggregate means only — the exchange format for reports."""
    payload: dict[str, Any] = {
        "format_version": FORMAT_VERSION,
        "cycles": result.cycles_run,
        "stream_mode": result.config.stream_mode,
        "slot_count_mean": result.slot_count.mean,
        "csa_alternatives_mean": result.csa.alternatives.mean,
        "algorithms": {},
        "csa_diagonal": {},
    }
    for name, stats in result.algorithms.items():
        payload["algorithms"][name] = {
            "find_rate": stats.find_rate,
            **{criterion.value: stats.mean(criterion) for criterion in Criterion},
        }
    for criterion in Criterion:
        payload["csa_diagonal"][criterion.value] = result.csa.diagonal(criterion)
    return payload


# ----------------------------------------------------------------------
# File helpers
# ----------------------------------------------------------------------
def save_json(payload: dict[str, Any], path: str) -> None:
    """Write a payload to ``path`` as pretty-printed JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_json(path: str) -> dict[str, Any]:
    """Read a JSON payload from ``path``."""
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def save_environment(environment: Environment, path: str) -> None:
    """Archive an environment to a JSON file."""
    save_json(environment_to_dict(environment), path)


def load_environment(path: str) -> Environment:
    """Restore an environment archived by :func:`save_environment`."""
    return environment_from_dict(load_json(path))
