"""``repro bench-core`` / ``repro bench-batch``: kernel and cycle throughput.

Times the AEP window search on the paper's base job (``n = 5``,
``t = 150``, ``S = 1500``) over freshly generated environments of
several pool sizes, once through the production kernel
(:func:`repro.core.aep.aep_scan`, which dispatches stock strategies to
the vectorized columnar kernel in :mod:`repro.core.vectorized` and
falls back to the incremental object loop otherwise) and once through
the frozen pre-change kernel (:mod:`repro.core.reference`).
Besides wall-clock windows/s and the speedup, every row records the
structural ``ScanResult`` counters — ``slots_scanned``, ``steps``,
``candidate_peak``, ``candidate_inserts``, ``candidate_expiries`` — so
the archived baseline (``BENCH_core.json``) tracks the complexity shape
("linear in slots, bounded per-slot work") next to the raw speed, which
is noisy on shared CI hardware.

Both kernels are asserted to select the identical window before any
timing is believed; a disagreement raises instead of producing numbers.

:func:`bench_batch` (``repro bench-batch``) measures one level up: the
*whole scheduling cycle* — phase-one alternative search for a job batch
followed by phase-two greedy combination — dispatched per job versus
through the cycle-level request-class grouping
(:meth:`~repro.core.algorithms.base.SlotSelectionAlgorithm.find_alternatives_batch`).
The batch mixes duplicate requests with budget-only-varying classes, the
traffic shape the grouping targets.  Both dispatches must produce the
byte-identical phase-two decision (same assignments, window spans,
totals) before timings are recorded.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Optional, Sequence

from repro.core.aep import ScanResult, aep_scan
from repro.core.extractors import (
    EarliestFinishExtractor,
    EarliestStartExtractor,
    MinRuntimeSubstitutionExtractor,
    MinTotalCostExtractor,
    WindowExtractor,
)
from repro.core.reference import (
    ReferenceMinRuntimeSubstitutionExtractor,
    reference_scan,
)
from repro.environment.generator import EnvironmentConfig, EnvironmentGenerator
from repro.hostinfo import host_payload
from repro.model.errors import ConfigurationError
from repro.model.job import ResourceRequest
from repro.model.slot import Slot

#: The paper's base resource request (Section 3.1): 5 nodes for 150 time
#: units within a budget of 1500.
BASE_REQUEST = ResourceRequest(node_count=5, reservation_time=150.0, budget=1500.0)


def _criteria() -> list[tuple[str, Callable[[], WindowExtractor], Callable[[], WindowExtractor], bool]]:
    """(name, incremental extractor, frozen reference extractor, stop_at_first)."""
    return [
        ("start_time", EarliestStartExtractor, EarliestStartExtractor, True),
        ("cost", MinTotalCostExtractor, MinTotalCostExtractor, False),
        (
            "runtime",
            MinRuntimeSubstitutionExtractor,
            ReferenceMinRuntimeSubstitutionExtractor,
            False,
        ),
        (
            "finish_time",
            EarliestFinishExtractor,
            lambda: EarliestFinishExtractor(
                runtime_extractor=ReferenceMinRuntimeSubstitutionExtractor()
            ),
            False,
        ),
    ]


def _windows_match(left: Optional[ScanResult], right: Optional[ScanResult]) -> bool:
    if left is None or right is None:
        return left is None and right is None
    if left.window.start != right.window.start:
        return False
    left_spans = [
        (ws.slot.node.node_id, ws.slot.start, ws.slot.end) for ws in left.window.slots
    ]
    right_spans = [
        (ws.slot.node.node_id, ws.slot.start, ws.slot.end) for ws in right.window.slots
    ]
    return left_spans == right_spans


def _time_scans(run: Callable[[], object], repeats: int) -> float:
    """Best-of-``repeats`` wall time of one full scan (seconds)."""
    best = float("inf")
    for _ in range(repeats):
        started = perf_counter()
        run()
        best = min(best, perf_counter() - started)
    return best


def bench_core(
    node_counts: Sequence[int] = (50, 100, 200),
    repeats: int = 3,
    seed: int = 2013,
    request: Optional[ResourceRequest] = None,
) -> dict[str, object]:
    """The kernel benchmark payload archived in ``BENCH_core.json``.

    Per (pool size, criterion) row: windows/s through the frozen
    reference kernel and through the incremental one (best of
    ``repeats``), their ratio, and the incremental scan's structural
    counters.  See the module docstring for why both are recorded.
    """
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    request = request if request is not None else BASE_REQUEST
    results: list[dict[str, object]] = []
    for node_count in node_counts:
        environment = EnvironmentGenerator(
            EnvironmentConfig(node_count=node_count, seed=seed)
        ).generate()
        # The current kernel is timed the way algorithms call it — over
        # the pool, whose columnar snapshot and per-request scan plan are
        # cached across scans of an unmutated pool.  The frozen reference
        # takes the ordered slot list, as it always did.
        pool = environment.slot_pool()
        slots: list[Slot] = pool.ordered()
        for name, make_incremental, make_reference, stop_at_first in _criteria():
            incremental_extractor = make_incremental()
            reference_extractor = make_reference()
            incremental = aep_scan(
                request, pool, incremental_extractor, stop_at_first=stop_at_first
            )
            reference = reference_scan(
                request, slots, reference_extractor, stop_at_first=stop_at_first
            )
            if not _windows_match(incremental, reference):
                raise AssertionError(
                    f"kernel disagreement on criterion {name!r} at "
                    f"{node_count} nodes — refusing to record timings"
                )
            reference_seconds = _time_scans(
                lambda: reference_scan(
                    request, slots, reference_extractor, stop_at_first=stop_at_first
                ),
                repeats,
            )
            incremental_seconds = _time_scans(
                lambda: aep_scan(
                    request, pool, incremental_extractor, stop_at_first=stop_at_first
                ),
                repeats,
            )
            row: dict[str, object] = {
                "nodes": node_count,
                "criterion": name,
                "slots": len(slots),
                "found": incremental is not None,
                "reference_windows_per_second": round(1.0 / reference_seconds, 1),
                "incremental_windows_per_second": round(1.0 / incremental_seconds, 1),
                "speedup": round(reference_seconds / incremental_seconds, 2),
            }
            if incremental is not None:
                row.update(
                    {
                        "window_start": round(incremental.window.start, 3),
                        "steps": incremental.steps,
                        "slots_scanned": incremental.slots_scanned,
                        "candidate_peak": incremental.candidate_peak,
                        "candidate_inserts": incremental.candidate_inserts,
                        "candidate_expiries": incremental.candidate_expiries,
                    }
                )
            results.append(row)
    from repro.core.vectorized import scan_counters

    return {
        "benchmark": "core_scan",
        "kernel": "vectorized",
        "config": {
            "seed": seed,
            "repeats": repeats,
            "request": {
                "node_count": request.node_count,
                "reservation_time": request.reservation_time,
                "budget": request.budget,
            },
        },
        "host": host_payload(),
        "scan_kernel": dict(scan_counters),
        "results": results,
    }


# ---------------------------------------------------------------------------
# bench-batch: whole-cycle throughput, per-job vs class-grouped dispatch
# ---------------------------------------------------------------------------

#: The batch palette: eight request classes over four plan shapes, each
#: shape at two budgets.  Duplicates of one class exercise result
#: sharing; budget-only pairs within a shape exercise the multi-budget
#: shared sweep of :func:`repro.core.batchscan.batch_aep_scan`.
_PALETTE_SHAPES: tuple[tuple[int, float], ...] = (
    (5, 150.0),
    (3, 100.0),
    (8, 150.0),
    (5, 100.0),
)
_PALETTE_BUDGET_PER_UNIT: tuple[float, ...] = (2.0, 4.0)


def _batch_palette() -> list[ResourceRequest]:
    """The request classes a bench batch cycles through (deterministic)."""
    palette: list[ResourceRequest] = []
    for node_count, reservation_time in _PALETTE_SHAPES:
        for per_unit in _PALETTE_BUDGET_PER_UNIT:
            palette.append(
                ResourceRequest(
                    node_count=node_count,
                    reservation_time=reservation_time,
                    budget=per_unit * reservation_time * node_count,
                )
            )
    return palette


def _choice_fingerprint(choice) -> tuple:
    """Exact value of a phase-two decision, for byte-identity checks."""
    assignments = tuple(
        sorted(
            (
                job_id,
                window.start,
                tuple(
                    (
                        ws.slot.node.node_id,
                        ws.slot.start,
                        ws.slot.end,
                        ws.required_time,
                        ws.cost,
                    )
                    for ws in window.slots
                ),
            )
            for job_id, window in choice.assignments.items()
        )
    )
    return (assignments, choice.unscheduled, choice.total_value)


def bench_batch(
    batch_sizes: Sequence[int] = (16, 64, 256),
    node_count: int = 200,
    repeats: int = 3,
    seed: int = 2013,
    alternatives: int = 10,
) -> dict[str, object]:
    """The cycle-throughput benchmark payload archived in ``BENCH_batch.json``.

    Per (search, batch size) row: whole-cycle jobs/s with per-job
    phase-one dispatch and with request-class grouping (best of
    ``repeats``), their ratio, and the grouping telemetry one grouped
    cycle adds to :data:`~repro.core.vectorized.scan_counters`.  Two
    searches are measured: CSA (the production multi-alternative search;
    grouping shares whole alternative sets per class) and MinCost (a
    plain AEP scan; grouping routes through the batched kernel with one
    multi-budget sweep per plan shape).

    Both dispatches must make the byte-identical phase-two decision;
    a mismatch raises instead of recording timings.
    """
    from repro.core.algorithms.csa import CSA
    from repro.core.algorithms.mincost import MinCost
    from repro.core.criteria import Criterion
    from repro.core.vectorized import scan_counters
    from repro.model.job import Job
    from repro.scheduling.combination import greedy_combination

    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    environment = EnvironmentGenerator(
        EnvironmentConfig(node_count=node_count, seed=seed)
    ).generate()
    pool = environment.slot_pool()
    palette = _batch_palette()
    results: list[dict[str, object]] = []
    for search_name, search in (
        ("csa", CSA(max_alternatives=alternatives)),
        ("mincost", MinCost()),
    ):
        for batch_size in batch_sizes:
            jobs = [
                Job(job_id=f"job-{index:04d}", request=palette[index % len(palette)])
                for index in range(batch_size)
            ]
            classes = len({job.request for job in jobs})

            def per_job_cycle():
                found = {
                    job.job_id: search.find_alternatives(
                        job, pool, limit=alternatives
                    )
                    for job in jobs
                }
                return greedy_combination(jobs, found, Criterion.COST)

            def grouped_cycle():
                batched = search.find_alternatives_batch(
                    jobs, pool, limit=alternatives
                )
                found = {
                    job.job_id: windows for job, windows in zip(jobs, batched)
                }
                return greedy_combination(jobs, found, Criterion.COST)

            before = dict(scan_counters)
            grouped_choice = grouped_cycle()
            grouping_delta = {
                key: scan_counters[key] - before.get(key, 0)
                for key in (
                    "grouped_jobs",
                    "grouped_classes",
                    "grouped_shared",
                    "batch_sweeps",
                    "batch_sweep_classes",
                )
            }
            per_job_choice = per_job_cycle()
            if _choice_fingerprint(per_job_choice) != _choice_fingerprint(
                grouped_choice
            ):
                raise AssertionError(
                    f"grouped dispatch changed the phase-two decision for "
                    f"search {search_name!r} at batch size {batch_size} — "
                    "refusing to record timings"
                )
            per_job_seconds = _time_scans(per_job_cycle, repeats)
            grouped_seconds = _time_scans(grouped_cycle, repeats)
            results.append(
                {
                    "search": search_name,
                    "batch_size": batch_size,
                    "classes": classes,
                    "scheduled": per_job_choice.scheduled_count,
                    "unscheduled": len(per_job_choice.unscheduled),
                    "per_job_jobs_per_second": round(
                        batch_size / per_job_seconds, 1
                    ),
                    "grouped_jobs_per_second": round(
                        batch_size / grouped_seconds, 1
                    ),
                    "speedup": round(per_job_seconds / grouped_seconds, 2),
                    "grouping": grouping_delta,
                }
            )
    return {
        "benchmark": "batch_cycle",
        "config": {
            "seed": seed,
            "repeats": repeats,
            "node_count": node_count,
            "batch_sizes": list(batch_sizes),
            "palette_classes": len(palette),
            "alternatives": alternatives,
        },
        "host": host_payload(),
        "scan_kernel": dict(scan_counters),
        "results": results,
    }
