"""``repro bench-core``: scan-kernel throughput, current vs reference.

Times the AEP window search on the paper's base job (``n = 5``,
``t = 150``, ``S = 1500``) over freshly generated environments of
several pool sizes, once through the production kernel
(:func:`repro.core.aep.aep_scan`, which dispatches stock strategies to
the vectorized columnar kernel in :mod:`repro.core.vectorized` and
falls back to the incremental object loop otherwise) and once through
the frozen pre-change kernel (:mod:`repro.core.reference`).
Besides wall-clock windows/s and the speedup, every row records the
structural ``ScanResult`` counters — ``slots_scanned``, ``steps``,
``candidate_peak``, ``candidate_inserts``, ``candidate_expiries`` — so
the archived baseline (``BENCH_core.json``) tracks the complexity shape
("linear in slots, bounded per-slot work") next to the raw speed, which
is noisy on shared CI hardware.

Both kernels are asserted to select the identical window before any
timing is believed; a disagreement raises instead of producing numbers.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Optional, Sequence

from repro.core.aep import ScanResult, aep_scan
from repro.core.extractors import (
    EarliestFinishExtractor,
    EarliestStartExtractor,
    MinRuntimeSubstitutionExtractor,
    MinTotalCostExtractor,
    WindowExtractor,
)
from repro.core.reference import (
    ReferenceMinRuntimeSubstitutionExtractor,
    reference_scan,
)
from repro.environment.generator import EnvironmentConfig, EnvironmentGenerator
from repro.hostinfo import host_payload
from repro.model.errors import ConfigurationError
from repro.model.job import ResourceRequest
from repro.model.slot import Slot

#: The paper's base resource request (Section 3.1): 5 nodes for 150 time
#: units within a budget of 1500.
BASE_REQUEST = ResourceRequest(node_count=5, reservation_time=150.0, budget=1500.0)


def _criteria() -> list[tuple[str, Callable[[], WindowExtractor], Callable[[], WindowExtractor], bool]]:
    """(name, incremental extractor, frozen reference extractor, stop_at_first)."""
    return [
        ("start_time", EarliestStartExtractor, EarliestStartExtractor, True),
        ("cost", MinTotalCostExtractor, MinTotalCostExtractor, False),
        (
            "runtime",
            MinRuntimeSubstitutionExtractor,
            ReferenceMinRuntimeSubstitutionExtractor,
            False,
        ),
        (
            "finish_time",
            EarliestFinishExtractor,
            lambda: EarliestFinishExtractor(
                runtime_extractor=ReferenceMinRuntimeSubstitutionExtractor()
            ),
            False,
        ),
    ]


def _windows_match(left: Optional[ScanResult], right: Optional[ScanResult]) -> bool:
    if left is None or right is None:
        return left is None and right is None
    if left.window.start != right.window.start:
        return False
    left_spans = [
        (ws.slot.node.node_id, ws.slot.start, ws.slot.end) for ws in left.window.slots
    ]
    right_spans = [
        (ws.slot.node.node_id, ws.slot.start, ws.slot.end) for ws in right.window.slots
    ]
    return left_spans == right_spans


def _time_scans(run: Callable[[], object], repeats: int) -> float:
    """Best-of-``repeats`` wall time of one full scan (seconds)."""
    best = float("inf")
    for _ in range(repeats):
        started = perf_counter()
        run()
        best = min(best, perf_counter() - started)
    return best


def bench_core(
    node_counts: Sequence[int] = (50, 100, 200),
    repeats: int = 3,
    seed: int = 2013,
    request: Optional[ResourceRequest] = None,
) -> dict[str, object]:
    """The kernel benchmark payload archived in ``BENCH_core.json``.

    Per (pool size, criterion) row: windows/s through the frozen
    reference kernel and through the incremental one (best of
    ``repeats``), their ratio, and the incremental scan's structural
    counters.  See the module docstring for why both are recorded.
    """
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    request = request if request is not None else BASE_REQUEST
    results: list[dict[str, object]] = []
    for node_count in node_counts:
        environment = EnvironmentGenerator(
            EnvironmentConfig(node_count=node_count, seed=seed)
        ).generate()
        # The current kernel is timed the way algorithms call it — over
        # the pool, whose columnar snapshot and per-request scan plan are
        # cached across scans of an unmutated pool.  The frozen reference
        # takes the ordered slot list, as it always did.
        pool = environment.slot_pool()
        slots: list[Slot] = pool.ordered()
        for name, make_incremental, make_reference, stop_at_first in _criteria():
            incremental_extractor = make_incremental()
            reference_extractor = make_reference()
            incremental = aep_scan(
                request, pool, incremental_extractor, stop_at_first=stop_at_first
            )
            reference = reference_scan(
                request, slots, reference_extractor, stop_at_first=stop_at_first
            )
            if not _windows_match(incremental, reference):
                raise AssertionError(
                    f"kernel disagreement on criterion {name!r} at "
                    f"{node_count} nodes — refusing to record timings"
                )
            reference_seconds = _time_scans(
                lambda: reference_scan(
                    request, slots, reference_extractor, stop_at_first=stop_at_first
                ),
                repeats,
            )
            incremental_seconds = _time_scans(
                lambda: aep_scan(
                    request, pool, incremental_extractor, stop_at_first=stop_at_first
                ),
                repeats,
            )
            row: dict[str, object] = {
                "nodes": node_count,
                "criterion": name,
                "slots": len(slots),
                "found": incremental is not None,
                "reference_windows_per_second": round(1.0 / reference_seconds, 1),
                "incremental_windows_per_second": round(1.0 / incremental_seconds, 1),
                "speedup": round(reference_seconds / incremental_seconds, 2),
            }
            if incremental is not None:
                row.update(
                    {
                        "window_start": round(incremental.window.start, 3),
                        "steps": incremental.steps,
                        "slots_scanned": incremental.slots_scanned,
                        "candidate_peak": incremental.candidate_peak,
                        "candidate_inserts": incremental.candidate_inserts,
                        "candidate_expiries": incremental.candidate_expiries,
                    }
                )
            results.append(row)
    return {
        "benchmark": "core_scan",
        "kernel": "vectorized",
        "config": {
            "seed": seed,
            "repeats": repeats,
            "request": {
                "node_count": request.node_count,
                "reservation_time": request.reservation_time,
                "budget": request.budget,
            },
        },
        "host": host_payload(),
        "results": results,
    }
