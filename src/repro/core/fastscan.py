"""Incrementally sorted AEP scans for the cheapest-subset criteria.

The generic scan re-sorts the alive candidates at every extraction, an
``O(N log N)`` step.  For the criteria whose extraction only needs the
candidates *ordered by cost* — MinCost and the cheapest-subset AMP — the
order can be maintained incrementally instead: insert each arriving slot
by bisection (``O(N)`` memory move, no comparison sort) and prune dead
slots with one order-preserving sweep.  The result is identical window
selection (the equivalence is property-tested) at a measurably lower
constant; see ``benchmarks/test_ablation_fast_scan.py``.

This module exists as the performance-engineering ablation: it shows the
paper's linear-scan structure leaves easy constant-factor headroom without
touching the algorithmics.
"""

from __future__ import annotations

from bisect import insort
from typing import Optional

from repro.core.aep import request_of
from repro.core.algorithms.base import JobLike
from repro.model.slot import TIME_EPSILON
from repro.model.slotpool import SlotPool
from repro.model.window import COST_EPSILON, Window, WindowSlot


class _CostOrdered:
    """Alive candidates maintained in ascending-cost order."""

    __slots__ = ("_items", "_serial")

    def __init__(self) -> None:
        self._items: list[tuple[float, int, WindowSlot]] = []
        self._serial = 0

    def add(self, leg: WindowSlot) -> None:
        """Add one element/value to the structure."""
        self._serial += 1
        insort(self._items, (leg.cost, self._serial, leg))

    def prune(self, window_start: float) -> None:
        """Drop candidates that no longer fit; keeps the cost order."""
        self._items = [
            entry for entry in self._items if entry[2].fits_from(window_start)
        ]

    def __len__(self) -> int:
        return len(self._items)

    def cheapest(self, n: int) -> list[WindowSlot]:
        """The ``n`` cheapest alive candidates."""
        return [entry[2] for entry in self._items[:n]]

    def cheapest_cost(self, n: int) -> float:
        """Total cost of the ``n`` cheapest alive candidates."""
        return sum(entry[0] for entry in self._items[:n])


def _budget_of(request) -> float:
    budget = request.effective_budget
    if budget != float("inf"):
        budget += COST_EPSILON * (1.0 + abs(budget))
    return budget


def _fast_scan(
    job: JobLike, pool: SlotPool, *, stop_at_first: bool
) -> Optional[Window]:
    """Shared scan: track the cheapest-``n`` subset incrementally.

    ``stop_at_first=True`` returns the earliest feasible window (AMP with
    the cheapest policy); ``False`` keeps the cheapest feasible window of
    the whole interval (MinCost).
    """
    request = request_of(job)
    n = request.node_count
    budget = _budget_of(request)
    deadline = request.deadline
    ordered = _CostOrdered()
    best: Optional[Window] = None
    best_cost = float("inf")

    for slot in pool:
        if not request.node_matches(slot.node):
            continue
        leg = WindowSlot.for_request(slot, request)
        window_start = slot.start
        ordered.prune(window_start)
        if not leg.fits_from(window_start):
            continue
        if (
            deadline is not None
            and window_start + leg.required_time > deadline + TIME_EPSILON
        ):
            continue
        ordered.add(leg)
        if len(ordered) < n:
            continue
        if deadline is not None:
            eligible = [
                entry
                for entry in ordered._items
                if window_start + entry[2].required_time <= deadline + TIME_EPSILON
            ][:n]
            if len(eligible) < n:
                continue
            cost = sum(entry[0] for entry in eligible)
            chosen = [entry[2] for entry in eligible]
        else:
            cost = ordered.cheapest_cost(n)
            chosen = None
        if cost > budget:
            continue
        if cost < best_cost - 1e-12 or (stop_at_first and best is None):
            if chosen is None:
                chosen = ordered.cheapest(n)
            best = Window(start=window_start, slots=tuple(chosen))
            best_cost = cost
            if stop_at_first:
                return best
    return best


def fast_min_cost(job: JobLike, pool: SlotPool) -> Optional[Window]:
    """Drop-in fast equivalent of :class:`repro.core.MinCost`."""
    return _fast_scan(job, pool, stop_at_first=False)


def fast_earliest_start(job: JobLike, pool: SlotPool) -> Optional[Window]:
    """Drop-in fast equivalent of ``AMP(policy="cheapest")``."""
    return _fast_scan(job, pool, stop_at_first=True)
