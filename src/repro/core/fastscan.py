"""Deprecation shim: the fast scans are now the main path.

This module used to maintain its own incrementally sorted candidate list
(``_CostOrdered``) as a performance-engineering ablation for the
cheapest-subset criteria.  That specialization has been absorbed into the
main scan kernel — :mod:`repro.core.candidates` maintains the cost order
(and more) for *every* criterion, and its public
:meth:`~repro.core.candidates.IncrementalCandidateSet.eligible` API
replaces the private ``_CostOrdered._items`` walk the deadline path used
here.  ``fast_min_cost`` / ``fast_earliest_start`` are kept as thin
wrappers so existing callers and the ablation benchmark keep working;
new code should call :class:`repro.core.MinCost` / ``AMP`` (or
:func:`repro.core.aep.aep_scan` directly) instead.
"""

from __future__ import annotations

from typing import Optional

from repro.core.aep import aep_scan
from repro.core.algorithms.base import JobLike
from repro.core.extractors import EarliestStartExtractor, MinTotalCostExtractor
from repro.model.slotpool import SlotPool
from repro.model.window import Window


def fast_min_cost(job: JobLike, pool: SlotPool) -> Optional[Window]:
    """Deprecated alias for the MinCost scan (see module docs)."""
    result = aep_scan(job, pool, MinTotalCostExtractor())
    return result.window if result is not None else None


def fast_earliest_start(job: JobLike, pool: SlotPool) -> Optional[Window]:
    """Deprecated alias for ``AMP(policy="cheapest")`` (see module docs)."""
    result = aep_scan(job, pool, EarliestStartExtractor(), stop_at_first=True)
    return result.window if result is not None else None
