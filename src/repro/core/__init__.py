"""The paper's contribution: the AEP scan, extractors and algorithms."""

from repro.core.aep import ScanResult, aep_scan, request_of
from repro.core.batchscan import batch_aep_scan, scan_class_key
from repro.core.candidates import IncrementalCandidateSet, LegFactory
from repro.core.composite import (
    constrained_best,
    dominates,
    lexicographic_choice,
    pareto_front,
    weighted_choice,
)
from repro.core.algorithms import (
    AMP,
    BalancedEdgeExtractor,
    CSA,
    Exhaustive,
    FirstFit,
    MinCost,
    MinEnergy,
    MinFinish,
    MinIdle,
    MinProcTime,
    MinRunTime,
    RigidBackfill,
    SlotSelectionAlgorithm,
)
from repro.core.criteria import Criterion, best_window
from repro.core.repair import find_fixed_start_replacements
from repro.core.search import find_window
from repro.core.extractors import (
    EarliestFinishExtractor,
    EarliestStartExtractor,
    ExactAdditiveExtractor,
    Extraction,
    GreedyAdditiveExtractor,
    MinRuntimeExactExtractor,
    MinRuntimeSubstitutionExtractor,
    MinTotalCostExtractor,
    RandomWindowExtractor,
    WindowExtractor,
    cheapest_subset,
)

__all__ = [
    "aep_scan",
    "AMP",
    "batch_aep_scan",
    "scan_class_key",
    "best_window",
    "BalancedEdgeExtractor",
    "cheapest_subset",
    "constrained_best",
    "dominates",
    "lexicographic_choice",
    "pareto_front",
    "weighted_choice",
    "Criterion",
    "CSA",
    "EarliestFinishExtractor",
    "EarliestStartExtractor",
    "ExactAdditiveExtractor",
    "Exhaustive",
    "Extraction",
    "find_fixed_start_replacements",
    "find_window",
    "FirstFit",
    "GreedyAdditiveExtractor",
    "IncrementalCandidateSet",
    "LegFactory",
    "MinCost",
    "MinEnergy",
    "MinFinish",
    "MinIdle",
    "MinProcTime",
    "MinRunTime",
    "MinRuntimeExactExtractor",
    "MinRuntimeSubstitutionExtractor",
    "MinTotalCostExtractor",
    "RandomWindowExtractor",
    "request_of",
    "RigidBackfill",
    "ScanResult",
    "SlotSelectionAlgorithm",
    "WindowExtractor",
]
