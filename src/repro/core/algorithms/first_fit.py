"""First-fit baseline (backtrack [10] / NorduGrid [11] style).

"Some existing algorithms assign a job to the first set of slots matching
the resource request without any optimization (the first fit type)."  The
baseline scans the ordered slot list and, as soon as the extended window
holds ``n`` candidates, returns the ``n`` longest-waiting ones — checking
the *resource* requirements only.  Unlike AMP it is blind to the economic
side of the request: the job budget is ignored, so the window it returns
may be unaffordable (callers can check ``window.total_cost``).  It exists
to quantify what AMP's budget awareness adds over a plain first fit.
"""

from __future__ import annotations

from typing import Optional

from repro.core.aep import request_of
from repro.core.algorithms.base import JobLike, SlotSelectionAlgorithm
from repro.model.slot import TIME_EPSILON
from repro.model.slotpool import SlotPool
from repro.model.window import Window, WindowSlot


class FirstFit(SlotSelectionAlgorithm):
    """First set of ``n`` matching slots; resource constraints only."""

    name = "FirstFit"

    def select(self, job: JobLike, pool: SlotPool) -> Optional[Window]:
        """Best window for ``job`` by this algorithm's criterion (see base class)."""
        request = request_of(job)
        n = request.node_count
        candidates: list[WindowSlot] = []
        for slot in pool:
            if not request.node_matches(slot.node):
                continue
            leg = WindowSlot.for_request(slot, request)
            window_start = slot.start
            candidates = [ws for ws in candidates if ws.fits_from(window_start)]
            if not leg.fits_from(window_start):
                continue
            if (
                request.deadline is not None
                and window_start + leg.required_time > request.deadline + TIME_EPSILON
            ):
                continue
            candidates.append(leg)
            if len(candidates) >= n:
                return Window(start=window_start, slots=tuple(candidates[:n]))
        return None
