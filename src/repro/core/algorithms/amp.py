"""AMP — Algorithm based on Maximal job Price: the earliest-start window.

AMP is the slot-selection scheme of the authors' earlier works [15-17]:
scan the ordered slot list and return the first window of ``n`` parallel
slots whose total cost does not exceed the job budget ``S`` ("finding a set
of the first n parallel slots the total cost of which does not exceed the
budget limit S").  Within the AEP framework this is start-time
minimization: "if at some step i of the algorithm the suitable window can
be formed, then the windows formed at the further steps will be guaranteed
to have the start time that is not earlier" — so the scan stops at the
first feasible window.

Two window-composition policies:

* ``"first"`` (default, paper-faithful) — the forming window consists of
  the longest-waiting alive slots in scan order; whenever the first ``n``
  of them exceed the budget, the *most expensive* slot of the forming
  window is evicted (that is the "maximal job price" rule: slots priced
  beyond the job's means are discarded) and the next-waiting slot takes
  its place.  The accepted window therefore costs just under the budget on
  average — which is exactly why the paper's Fig. 4 shows AMP's cost near
  the user limit.
* ``"cheapest"`` — take the ``n`` cheapest alive candidates at each step.
  Feasibility of the cheapest subset is equivalent to feasibility of any
  subset, so this policy provably returns the earliest possible start
  time; it is kept as the optimal ablation variant.
"""

from __future__ import annotations

from typing import Optional

from repro.core.aep import aep_scan, request_of
from repro.core.algorithms.base import JobLike, SlotSelectionAlgorithm
from repro.core.candidates import LegFactory
from repro.core.extractors import EarliestStartExtractor
from repro.model.slot import TIME_EPSILON
from repro.model.slotpool import SlotPool
from repro.model.window import COST_EPSILON, Window, WindowSlot


class AMP(SlotSelectionAlgorithm):
    """Earliest-start window selection (the AMP procedure).

    Parameters
    ----------
    policy:
        ``"first"`` (default) — scan-order window with most-expensive-slot
        eviction, the paper-faithful behaviour; ``"cheapest"`` — the
        ``n`` cheapest alive candidates, which guarantees the earliest
        possible start time.
    """

    def __init__(self, policy: str = "first") -> None:
        if policy not in ("first", "cheapest"):
            raise ValueError(f"unknown AMP policy {policy!r}")
        self.policy = policy
        self.name = "AMP" if policy == "first" else "AMP-cheapest"
        self._extractor = EarliestStartExtractor()

    def select(
        self,
        job: JobLike,
        pool: SlotPool,
        *,
        leg_factory: Optional[LegFactory] = None,
    ) -> Optional[Window]:
        """Best window for ``job`` by this algorithm's criterion (see base class).

        ``leg_factory`` optionally shares a per-(node, request) leg cache
        across repeated scans of the same request (CSA's AMP re-runs).
        """
        if self.policy == "cheapest":
            result = aep_scan(
                job, pool, self._extractor, stop_at_first=True, leg_factory=leg_factory
            )
            return result.window if result is not None else None
        return self._select_first_policy(job, pool, leg_factory=leg_factory)

    def _batch_scan_spec(self):
        """The cheapest policy is a stop-at-first AEP scan; the
        paper-faithful eviction scan is not (generic grouping applies)."""
        if self.policy == "cheapest":
            return (self._extractor, True)
        return None

    def _select_first_policy(
        self,
        job: JobLike,
        pool: SlotPool,
        *,
        leg_factory: Optional[LegFactory] = None,
    ) -> Optional[Window]:
        """The eviction scan of the paper-faithful AMP (see module docs)."""
        request = request_of(job)
        n = request.node_count
        budget = request.effective_budget
        if budget != float("inf"):
            budget += COST_EPSILON * (1.0 + abs(budget))
        deadline = request.deadline
        legs = leg_factory if leg_factory is not None else LegFactory(request)
        candidates: list[WindowSlot] = []
        for slot in pool:
            if not request.node_matches(slot.node):
                continue
            leg = legs.leg(slot)
            window_start = slot.start
            candidates = [ws for ws in candidates if ws.fits_from(window_start)]
            if not leg.fits_from(window_start):
                continue
            if (
                deadline is not None
                and window_start + leg.required_time > deadline + TIME_EPSILON
            ):
                continue
            candidates.append(leg)
            # Evict over-priced slots from the forming window until the
            # first n alive slots are affordable (or too few remain).
            while len(candidates) >= n:
                forming = candidates[:n]
                if sum(ws.cost for ws in forming) <= budget:
                    return Window(start=window_start, slots=tuple(forming))
                most_expensive = max(range(n), key=lambda i: forming[i].cost)
                del candidates[most_expensive]
        return None
