"""MinFinish — the earliest-finish-time window (Section 2.2).

The finish time of a window anchored at scan position ``tStart`` is
``tStart + minRuntime``, where ``minRuntime`` is computed by the runtime-
minimizing procedure on the current extended window.  Selecting the
smallest such value across the scan yields the earliest completion over
the whole scheduling interval.
"""

from __future__ import annotations

from typing import Optional

from repro.core.aep import aep_scan
from repro.core.algorithms.base import JobLike, SlotSelectionAlgorithm
from repro.core.extractors import (
    EarliestFinishExtractor,
    MinRuntimeExactExtractor,
    MinRuntimeSubstitutionExtractor,
)
from repro.model.slotpool import SlotPool
from repro.model.window import Window


class MinFinish(SlotSelectionAlgorithm):
    """Earliest-finish window selection.

    Parameters
    ----------
    exact:
        ``False`` (default) backs the per-step runtime minimization with
        the paper's substitution heuristic; ``True`` with the exact sweep.
    """

    def __init__(self, exact: bool = False) -> None:
        self.exact = exact
        self.name = "MinFinish-exact" if exact else "MinFinish"
        runtime_extractor = (
            MinRuntimeExactExtractor() if exact else MinRuntimeSubstitutionExtractor()
        )
        self._extractor = EarliestFinishExtractor(runtime_extractor)

    def select(self, job: JobLike, pool: SlotPool) -> Optional[Window]:
        """Best window for ``job`` by this algorithm's criterion (see base class)."""
        result = aep_scan(job, pool, self._extractor)
        return result.window if result is not None else None

    def _batch_scan_spec(self):
        """Plain AEP scan: batch cycles through the grouped kernel."""
        return (self._extractor, False)
