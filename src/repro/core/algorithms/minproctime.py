"""MinProcTime — the minimum total node (processor) time window.

The paper evaluates a deliberately *simplified* implementation: at each
scan step "a random window is selected" and only the best-by-criterion
random window survives.  It trades optimality for speed — Section 3.2
reports it within 2% of the CSA result at a fraction of the cost — so we
keep that randomized variant as the default and additionally provide an
optimizing variant (``simplified=False``) built on the greedy-substitution
additive extractor, for the ablation benchmark.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.aep import aep_scan
from repro.core.algorithms.base import JobLike, SlotSelectionAlgorithm
from repro.core.extractors import (
    ExactAdditiveExtractor,
    GreedyAdditiveExtractor,
    RandomWindowExtractor,
    runtime_key,
)
from repro.model.slotpool import SlotPool
from repro.model.window import Window


class MinProcTime(SlotSelectionAlgorithm):
    """Minimum total processor-time window selection.

    Parameters
    ----------
    simplified:
        ``True`` (default) reproduces the paper's randomized selection;
        ``False`` optimizes each step with greedy substitutions.
    exact:
        With ``simplified=False``, use the branch-and-bound extractor
        instead of the greedy one.  This is the per-step 0-1 program of
        Section 2.1 solved exactly — the IP-style comparator of the
        paper's related work, optimal but markedly slower (see the
        MinProcTime ablation benchmark).
    rng:
        Random generator for the simplified mode (reproducibility).
    """

    def __init__(
        self,
        simplified: bool = True,
        rng: Optional[np.random.Generator] = None,
        exact: bool = False,
    ) -> None:
        self.simplified = simplified
        self.exact = exact
        if simplified:
            self.name = "MinProcTime"
            self._extractor = RandomWindowExtractor(rng=rng)
            # The randomized extractor consumes a shared random stream:
            # grouping equal requests would draw fewer times than the
            # sequential per-job loop, changing later selections.
            self.deterministic = False
        elif exact:
            self.name = "MinProcTime-exact"
            self._extractor = ExactAdditiveExtractor(key=runtime_key)
        else:
            self.name = "MinProcTime-opt"
            self._extractor = GreedyAdditiveExtractor(key=runtime_key)

    def select(self, job: JobLike, pool: SlotPool) -> Optional[Window]:
        """Best window for ``job`` by this algorithm's criterion (see base class)."""
        result = aep_scan(job, pool, self._extractor)
        return result.window if result is not None else None

    def _batch_scan_spec(self):
        """Optimizing variants are plain AEP scans; the randomized one
        is excluded by ``deterministic = False`` before this is consulted."""
        if self.simplified:
            return None
        return (self._extractor, False)
