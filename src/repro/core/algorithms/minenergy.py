"""MinEnergy — minimum total energy consumption window.

Section 2.1 names "a minimum energy consumption" as an example criterion
for the AEP scheme without evaluating it; we provide it as a full
implementation to demonstrate that AEP extends to any additive slot
characteristic.  The per-slot energy is ``node.power() * required_time``
(see :meth:`repro.model.CpuNode.power`), which is U-shaped in node
performance: very slow nodes run too long, very fast nodes draw too much
power, so the criterion genuinely differs from both MinCost and
MinProcTime.
"""

from __future__ import annotations

from typing import Optional

from repro.core.aep import aep_scan
from repro.core.algorithms.base import JobLike, SlotSelectionAlgorithm
from repro.core.extractors import (
    ExactAdditiveExtractor,
    GreedyAdditiveExtractor,
    energy_key,
)
from repro.model.slotpool import SlotPool
from repro.model.window import Window


class MinEnergy(SlotSelectionAlgorithm):
    """Minimum-energy window selection (additive AEP criterion).

    Parameters
    ----------
    exact:
        ``False`` (default) uses the greedy-substitution extractor;
        ``True`` uses branch-and-bound (small instances only).
    """

    def __init__(self, exact: bool = False) -> None:
        self.exact = exact
        self.name = "MinEnergy-exact" if exact else "MinEnergy"
        self._extractor = (
            ExactAdditiveExtractor(energy_key)
            if exact
            else GreedyAdditiveExtractor(energy_key)
        )

    def select(self, job: JobLike, pool: SlotPool) -> Optional[Window]:
        """Best window for ``job`` by this algorithm's criterion (see base class)."""
        result = aep_scan(job, pool, self._extractor)
        return result.window if result is not None else None

    def _batch_scan_spec(self):
        """Plain AEP scan: batch cycles through the grouped kernel."""
        return (self._extractor, False)
