"""Concrete slot-selection algorithms (AEP family, CSA, baselines)."""

from repro.core.algorithms.amp import AMP
from repro.core.algorithms.backfill import RigidBackfill
from repro.core.algorithms.base import JobLike, SlotSelectionAlgorithm
from repro.core.algorithms.csa import CSA
from repro.core.algorithms.exhaustive import Exhaustive
from repro.core.algorithms.first_fit import FirstFit
from repro.core.algorithms.mincost import MinCost
from repro.core.algorithms.minenergy import MinEnergy
from repro.core.algorithms.minfinish import MinFinish
from repro.core.algorithms.minidle import BalancedEdgeExtractor, MinIdle
from repro.core.algorithms.minproctime import MinProcTime
from repro.core.algorithms.minruntime import MinRunTime

__all__ = [
    "AMP",
    "CSA",
    "Exhaustive",
    "FirstFit",
    "JobLike",
    "MinCost",
    "MinEnergy",
    "MinFinish",
    "MinIdle",
    "BalancedEdgeExtractor",
    "MinProcTime",
    "MinRunTime",
    "RigidBackfill",
    "SlotSelectionAlgorithm",
]
