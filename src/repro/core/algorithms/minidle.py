"""MinIdle — minimum co-allocation waste (the "rough right edge" area).

An AEP criterion beyond the paper's evaluated five: for tightly coupled
parallel jobs, tasks that finish early block on the stragglers, so the
co-allocation wastes ``runtime - t`` node-time on every leg of duration
``t``.  MinIdle selects the window whose legs run as equally long as
possible under the budget.

Extraction: sort the alive candidates by task duration.  For a *fixed*
longest leg, the waste-minimizing companions are the ``n - 1`` longest
tasks not exceeding it — i.e. the candidates immediately below it in the
duration order.  Scanning all consecutive duration-windows of size ``n``
therefore covers every optimal composition; the budget filter makes it a
heuristic (a skipped expensive member could be replaced by a farther,
cheaper one), so the cheapest feasible subset is kept as a fallback —
guaranteeing MinIdle finds a window whenever any algorithm does.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.aep import aep_scan
from repro.core.algorithms.base import JobLike, SlotSelectionAlgorithm
from repro.core.extractors import Extraction, cheapest_subset
from repro.model.job import ResourceRequest
from repro.model.slotpool import SlotPool
from repro.model.window import COST_EPSILON, Window, WindowSlot


def _idle_of(group: Sequence[WindowSlot]) -> float:
    longest = max(ws.required_time for ws in group)
    return sum(longest - ws.required_time for ws in group)


class BalancedEdgeExtractor:
    """Minimal-idle extraction via the consecutive duration sweep."""

    def extract(
        self,
        window_start: float,
        candidates: Sequence[WindowSlot],
        request: ResourceRequest,
    ) -> Optional[Extraction]:
        """Best feasible ``n``-subset at this scan step (see class docs)."""
        n = request.node_count
        budget = request.effective_budget
        if budget != float("inf"):
            budget += COST_EPSILON * (1.0 + abs(budget))
        if len(candidates) < n:
            return None
        by_duration = sorted(
            candidates, key=lambda ws: (ws.required_time, ws.cost)
        )
        best: Optional[Extraction] = None
        for offset in range(len(by_duration) - n + 1):
            group = by_duration[offset : offset + n]
            if sum(ws.cost for ws in group) > budget:
                continue
            idle = _idle_of(group)
            if best is None or idle < best.value - 1e-12:
                best = Extraction(value=idle, slots=tuple(group))
        if best is None:
            # Budget-feasibility fallback: the cheapest subset exists iff
            # any feasible window exists at this step.
            fallback = cheapest_subset(candidates, n, budget)
            if fallback is None:
                return None
            best = Extraction(value=_idle_of(fallback), slots=tuple(fallback))
        return best


class MinIdle(SlotSelectionAlgorithm):
    """Minimum co-allocation waste window selection."""

    name = "MinIdle"

    def __init__(self) -> None:
        self._extractor = BalancedEdgeExtractor()

    def select(self, job: JobLike, pool: SlotPool) -> Optional[Window]:
        """Best window for ``job`` by this algorithm's criterion (see base class)."""
        result = aep_scan(job, pool, self._extractor)
        return result.window if result is not None else None

    def _batch_scan_spec(self):
        """Plain AEP scan: batch cycles through the grouped kernel."""
        return (self._extractor, False)
