"""Common interface of all slot-selection algorithms."""

from __future__ import annotations

import abc
from typing import Optional, Union

from repro.model.job import Job, ResourceRequest
from repro.model.slotpool import SlotPool
from repro.model.window import Window

JobLike = Union[Job, ResourceRequest]


class SlotSelectionAlgorithm(abc.ABC):
    """A strategy that selects co-allocation windows from a slot pool.

    Concrete algorithms differ in the criterion they optimize and in
    whether they produce a single window (the AEP family) or a list of
    disjoint alternatives (CSA).  ``select`` never mutates the pool;
    callers decide when to commit a window via
    :meth:`repro.model.SlotPool.cut_window`.
    """

    #: Short name used in tables, figures and logs.
    name: str = "abstract"

    @abc.abstractmethod
    def select(self, job: JobLike, pool: SlotPool) -> Optional[Window]:
        """The best window for ``job`` by this algorithm's criterion.

        Returns ``None`` when the pool holds no feasible window.
        """

    def find_alternatives(
        self, job: JobLike, pool: SlotPool, limit: Optional[int] = None
    ) -> list[Window]:
        """Alternative windows for ``job`` (disjoint where applicable).

        The default implementation returns the single ``select`` result;
        CSA overrides this with the multi-alternative search.
        """
        window = self.select(job, pool)
        if window is None:
            return []
        return [window]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
