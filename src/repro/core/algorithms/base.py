"""Common interface of all slot-selection algorithms."""

from __future__ import annotations

import abc
from typing import Optional, Union

from repro.model.job import Job, ResourceRequest
from repro.model.slotpool import SlotPool
from repro.model.window import Window

JobLike = Union[Job, ResourceRequest]


class SlotSelectionAlgorithm(abc.ABC):
    """A strategy that selects co-allocation windows from a slot pool.

    Concrete algorithms differ in the criterion they optimize and in
    whether they produce a single window (the AEP family) or a list of
    disjoint alternatives (CSA).  ``select`` never mutates the pool;
    callers decide when to commit a window via
    :meth:`repro.model.SlotPool.cut_window`.
    """

    #: Short name used in tables, figures and logs.
    name: str = "abstract"

    #: Whether ``select``/``find_alternatives`` is a pure function of the
    #: (request, pool) pair.  Stochastic algorithms (the randomized
    #: MinProcTime) set this ``False``, which disables request-class
    #: grouping in :meth:`find_alternatives_batch` — sharing one result
    #: across equal requests would consume the random stream differently
    #: than the sequential per-job loop does.
    deterministic: bool = True

    @abc.abstractmethod
    def select(self, job: JobLike, pool: SlotPool) -> Optional[Window]:
        """The best window for ``job`` by this algorithm's criterion.

        Returns ``None`` when the pool holds no feasible window.
        """

    def find_alternatives(
        self, job: JobLike, pool: SlotPool, limit: Optional[int] = None
    ) -> list[Window]:
        """Alternative windows for ``job`` (disjoint where applicable).

        The default implementation returns the single ``select`` result;
        CSA overrides this with the multi-alternative search.
        """
        window = self.select(job, pool)
        if window is None:
            return []
        return [window]

    def _batch_scan_spec(self):
        """``(extractor, stop_at_first)`` when ``select`` is a plain AEP scan.

        Algorithms whose ``select`` is exactly ``aep_scan(job, pool,
        extractor, stop_at_first=...)`` return the pair here, routing
        :meth:`find_alternatives_batch` through the batched kernel
        (:func:`repro.core.batchscan.batch_aep_scan`) — one scan per
        request class, shared sweeps for budget-only-varying classes.
        ``None`` (the default) keeps the generic per-class dispatch.
        """
        return None

    def find_alternatives_batch(
        self,
        jobs: list[JobLike],
        pool: SlotPool,
        limit: Optional[int] = None,
    ) -> list[list[Window]]:
        """Alternatives for a whole cycle batch, one search per request class.

        Jobs whose requests compare equal receive one
        :meth:`find_alternatives` run and share its windows (each job
        gets its own shallow list copy; the Window objects are shared).
        Sharing is decision-safe downstream because a window conflicts
        with itself, so phase 2 can never assign a shared window twice.
        The result is element-for-element identical to calling
        :meth:`find_alternatives` per job — grouping only removes
        redundant recomputation, never changes a decision.
        """
        job_list = list(jobs)
        if not job_list:
            return []
        if not self.deterministic:
            # Per-job dispatch preserves the random stream consumption.
            return [self.find_alternatives(job, pool, limit) for job in job_list]
        spec = self._batch_scan_spec()
        if spec is not None:
            from repro.core.batchscan import batch_aep_scan

            extractor, stop_at_first = spec
            results = batch_aep_scan(
                job_list, pool, extractor, stop_at_first=stop_at_first
            )
            return [[] if res is None else [res.window] for res in results]
        from repro.core.aep import request_of
        from repro.core.vectorized import scan_counters

        groups: dict[ResourceRequest, list[int]] = {}
        for index, job in enumerate(job_list):
            groups.setdefault(request_of(job), []).append(index)
        scan_counters["grouped_jobs"] += len(job_list)
        scan_counters["grouped_classes"] += len(groups)
        scan_counters["grouped_shared"] += len(job_list) - len(groups)
        out: list[list[Window]] = [[] for _ in job_list]
        for members in groups.values():
            windows = self.find_alternatives(job_list[members[0]], pool, limit)
            out[members[0]] = windows
            for index in members[1:]:
                out[index] = list(windows)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
