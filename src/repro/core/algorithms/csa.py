"""CSA — "Common Stats, AMP": the multi-alternative search scheme.

CSA is the general alternative-search scheme of the authors' earlier works
[15-17]: run AMP to find the earliest feasible window, *cut* its slots out
of the pool, and repeat until no further window exists.  The result is a
set of alternatives "disjointed by the slots" for one job; optimization by
any criterion then happens at the *selection* step, by picking the extreme
alternative from the set.

CSA is the paper's main comparator: it finds on average 57 alternatives per
job in the base environment but pays for them with a working time orders of
magnitude above the single-window AEP implementations (Tables 1-2).
"""

from __future__ import annotations

from typing import Optional

from repro.core.aep import request_of
from repro.core.algorithms.amp import AMP
from repro.core.algorithms.base import JobLike, SlotSelectionAlgorithm
from repro.core.candidates import LegFactory
from repro.core.criteria import Criterion, best_window
from repro.model.slotpool import SlotPool
from repro.model.window import Window


class CSA(SlotSelectionAlgorithm):
    """Multi-alternative search via repeated AMP runs with slot cutting.

    Parameters
    ----------
    criterion:
        The selection criterion applied by :meth:`select` to the collected
        alternatives (start time by default, matching plain AMP behaviour).
    max_alternatives:
        Optional cap on the number of alternatives collected.
    cut_mode:
        Slot-cutting policy between consecutive AMP runs:
        ``"consume"`` (default) drops every used slot entirely — the
        coarse policy whose alternative counts match the paper's CSA
        statistics; ``"split"`` re-inserts the unused remainders of each
        slot, which yields several times more (denser-packed)
        alternatives.  See the cutting-policy ablation in DESIGN.md.
    amp_policy:
        Window-composition policy of the underlying AMP runs (see
        :class:`~repro.core.algorithms.amp.AMP`).
    """

    def __init__(
        self,
        criterion: Criterion = Criterion.START_TIME,
        max_alternatives: Optional[int] = None,
        cut_mode: str = "consume",
        amp_policy: str = "first",
    ) -> None:
        if max_alternatives is not None and max_alternatives < 1:
            raise ValueError(f"max_alternatives must be >= 1, got {max_alternatives}")
        if cut_mode not in ("split", "consume"):
            raise ValueError(f"unknown cut mode {cut_mode!r}")
        self.criterion = criterion
        self.max_alternatives = max_alternatives
        self.cut_mode = cut_mode
        self.name = f"CSA[{criterion.value}]"
        self._amp = AMP(policy=amp_policy)

    def find_alternatives(
        self, job: JobLike, pool: SlotPool, limit: Optional[int] = None
    ) -> list[Window]:
        """All slot-disjoint alternatives found by repeated AMP + cutting.

        The caller's pool is never mutated; cutting happens on a working
        copy.
        """
        cap = limit if limit is not None else self.max_alternatives
        working = pool.copy()
        # One leg cache across all AMP re-runs: runtimes/costs depend only
        # on (node, request), and cutting never changes either.
        legs = LegFactory(request_of(job))
        alternatives: list[Window] = []
        while cap is None or len(alternatives) < cap:
            window = self._amp.select(job, working, leg_factory=legs)
            if window is None:
                break
            alternatives.append(window)
            working.cut_window(window, mode=self.cut_mode)
        return alternatives

    def select(self, job: JobLike, pool: SlotPool) -> Optional[Window]:
        """The best alternative by ``self.criterion`` among all found."""
        alternatives = self.find_alternatives(job, pool)
        if not alternatives:
            return None
        return best_window(alternatives, self.criterion)

    def select_by(
        self, job: JobLike, pool: SlotPool, criterion: Criterion
    ) -> Optional[Window]:
        """One-off selection by an explicit criterion."""
        alternatives = self.find_alternatives(job, pool)
        if not alternatives:
            return None
        return best_window(alternatives, criterion)
