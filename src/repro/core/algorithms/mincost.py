"""MinCost — the minimum total allocation cost window (Section 2.2).

"If at each step of the algorithm a window with the minimum sum cost is
selected, at the end the window with the best value of the criterion crW
will be guaranteed to have overall minimum total allocation cost at the
given scheduling interval."  Selecting the ``n`` cheapest candidates is
exactly optimal for this additive objective, so MinCost is an *exact*
member of the AEP family.
"""

from __future__ import annotations

from typing import Optional

from repro.core.aep import aep_scan
from repro.core.algorithms.base import JobLike, SlotSelectionAlgorithm
from repro.core.extractors import MinTotalCostExtractor
from repro.model.slotpool import SlotPool
from repro.model.window import Window


class MinCost(SlotSelectionAlgorithm):
    """Minimum-total-cost window selection over the scheduling interval."""

    name = "MinCost"

    def __init__(self) -> None:
        self._extractor = MinTotalCostExtractor()

    def select(self, job: JobLike, pool: SlotPool) -> Optional[Window]:
        """Best window for ``job`` by this algorithm's criterion (see base class)."""
        result = aep_scan(job, pool, self._extractor)
        return result.window if result is not None else None

    def _batch_scan_spec(self):
        """Plain AEP scan: batch cycles through the grouped kernel."""
        return (self._extractor, False)
