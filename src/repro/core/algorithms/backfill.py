"""Rigid backfill baseline (Moab-style slot window search).

Section 1 discusses the backfilling algorithm of the Moab scheduler: it
finds the earliest window but "during a slot window search does not take
into account any additive constraints such as ... the maximum allowed total
allocation cost" and "does not support environments with non-dedicated
resources" — in particular it treats the requested reservation time as a
*rigid* duration, identical on every node, instead of scaling it by node
performance.

This baseline reproduces those limitations deliberately:

* every task occupies exactly ``reservation_time`` time units regardless of
  the node's speed (rigid reservations);
* the budget and the per-node price cap are ignored;
* the earliest window wins (no criterion search).

It exists to quantify, in the benchmarks, what the AEP family's awareness
of heterogeneity and cost buys over a classic backfill window search.
"""

from __future__ import annotations

from typing import Optional

from repro.core.aep import request_of
from repro.core.algorithms.base import JobLike, SlotSelectionAlgorithm
from repro.model.slot import TIME_EPSILON
from repro.model.slotpool import SlotPool
from repro.model.window import Window, WindowSlot


class RigidBackfill(SlotSelectionAlgorithm):
    """Earliest rigid-duration window, cost-blind (backfill comparator)."""

    name = "RigidBackfill"

    def select(self, job: JobLike, pool: SlotPool) -> Optional[Window]:
        """Best window for ``job`` by this algorithm's criterion (see base class)."""
        request = request_of(job)
        n = request.node_count
        duration = request.reservation_time  # rigid: no performance scaling
        candidates: list[WindowSlot] = []
        for slot in pool:
            if not request.node_matches(slot.node):
                continue
            window_start = slot.start
            candidates = [
                ws
                for ws in candidates
                if ws.slot.remaining_from(window_start) >= duration - TIME_EPSILON
            ]
            if slot.remaining_from(window_start) < duration - TIME_EPSILON:
                continue
            leg = WindowSlot(
                slot=slot, required_time=duration, cost=slot.node.usage_cost(duration)
            )
            if (
                request.deadline is not None
                and window_start + duration > request.deadline + TIME_EPSILON
            ):
                continue
            candidates.append(leg)
            if len(candidates) >= n:
                return Window(start=window_start, slots=tuple(candidates[:n]))
        return None
