"""MinRunTime — the minimum execution-runtime window (Section 2.2).

The window runtime equals the length of its longest reservation (the task
on the slowest node), so minimizing it under the budget is a bottleneck
selection problem.  The paper solves it with a substitution heuristic —
repeatedly swap the longest slot of the forming window for the cheapest
remaining shorter one while the budget holds.  We expose that heuristic as
the default (paper-faithful) mode and an exact prefix-sweep mode
(``exact=True``) for the ablation study of DESIGN.md.
"""

from __future__ import annotations

from typing import Optional

from repro.core.aep import aep_scan
from repro.core.algorithms.base import JobLike, SlotSelectionAlgorithm
from repro.core.extractors import (
    MinRuntimeExactExtractor,
    MinRuntimeSubstitutionExtractor,
)
from repro.model.slotpool import SlotPool
from repro.model.window import Window


class MinRunTime(SlotSelectionAlgorithm):
    """Minimum-runtime window selection.

    Parameters
    ----------
    exact:
        ``False`` (default) reproduces the paper's substitution procedure;
        ``True`` uses the exact prefix sweep instead.
    """

    def __init__(self, exact: bool = False) -> None:
        self.exact = exact
        self.name = "MinRunTime-exact" if exact else "MinRunTime"
        self._extractor = (
            MinRuntimeExactExtractor() if exact else MinRuntimeSubstitutionExtractor()
        )

    def select(self, job: JobLike, pool: SlotPool) -> Optional[Window]:
        """Best window for ``job`` by this algorithm's criterion (see base class)."""
        result = aep_scan(job, pool, self._extractor)
        return result.window if result is not None else None

    def _batch_scan_spec(self):
        """Plain AEP scan: batch cycles through the grouped kernel."""
        return (self._extractor, False)
