"""Exhaustive-search reference optimum.

The related work the paper positions itself against includes exhaustive
and integer-programming co-allocation schemes [2, 12, 13] whose solution
quality is optimal but whose complexity rules out on-line use.  This module
provides that reference point: enumerate every candidate window start (the
distinct start times of the ordered slot list) and, at each, every feasible
``n``-subset of the alive candidates, keeping the global optimum of the
requested criterion.

Runtime is combinatorial — use it on small instances only.  The test suite
relies on it to certify the optimality (or measure the sub-optimality) of
the linear-complexity AEP implementations.
"""

from __future__ import annotations

from itertools import combinations
from typing import Optional

from repro.core.aep import request_of
from repro.core.algorithms.base import JobLike, SlotSelectionAlgorithm
from repro.core.criteria import Criterion
from repro.model.slot import TIME_EPSILON
from repro.model.slotpool import SlotPool
from repro.model.window import COST_EPSILON, Window, WindowSlot

#: Safety valve: refuse instances whose subset space is plainly too large.
MAX_CANDIDATES = 64


class Exhaustive(SlotSelectionAlgorithm):
    """Globally optimal window by brute force (small instances only)."""

    def __init__(self, criterion: Criterion = Criterion.COST) -> None:
        self.criterion = criterion
        self.name = f"Exhaustive[{criterion.value}]"

    def select(self, job: JobLike, pool: SlotPool) -> Optional[Window]:
        """Best window for ``job`` by this algorithm's criterion (see base class)."""
        request = request_of(job)
        n = request.node_count
        budget = request.effective_budget
        if budget != float("inf"):
            budget += COST_EPSILON * (1.0 + abs(budget))
        slots = pool.ordered()
        if len(slots) > MAX_CANDIDATES:
            raise ValueError(
                f"Exhaustive search limited to {MAX_CANDIDATES} slots, got {len(slots)}"
            )
        matching = [slot for slot in slots if request.node_matches(slot.node)]
        best: Optional[Window] = None
        best_value = float("inf")
        for anchor in matching:
            window_start = anchor.start
            alive = [
                WindowSlot.for_request(slot, request)
                for slot in matching
                if slot.start <= window_start + TIME_EPSILON
                and slot.remaining_from(window_start)
                >= request.task_runtime_on(slot.node) - TIME_EPSILON
            ]
            if request.deadline is not None:
                alive = [
                    ws
                    for ws in alive
                    if window_start + ws.required_time
                    <= request.deadline + TIME_EPSILON
                ]
            if len(alive) < n:
                continue
            for subset in combinations(alive, n):
                if sum(ws.cost for ws in subset) > budget:
                    continue
                window = Window(start=window_start, slots=tuple(subset))
                value = self.criterion.evaluate(window)
                if value < best_value - 1e-12:
                    best_value = value
                    best = window
        return best
