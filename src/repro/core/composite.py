"""Composite selection strategies over multiple criteria.

Section 2.1: "By combining the optimization criteria, VO administrators
and users can form alternatives search strategies for every job in the
batch."  The paper leaves the combination machinery to the enclosing
scheduling scheme; this module provides the three standard combinators a
VO actually needs, all built on the primitives of :mod:`repro.core`:

* :func:`weighted_choice` — scalarization: minimize a weighted sum of
  normalized criteria over a set of alternatives;
* :func:`lexicographic_choice` — strict priority: best by the first
  criterion, ties broken by the next (with a relative tolerance that
  treats near-ties as ties, which is what makes the combinator useful on
  continuous criteria);
* :func:`pareto_front` — the set of non-dominated alternatives, the raw
  material for any interactive trade-off.

All operate on window lists — typically the alternatives CSA collected —
so they compose with every search algorithm in the library.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.criteria import Criterion
from repro.model.window import Window


def _values(windows: Sequence[Window], criterion: Criterion) -> list[float]:
    return [criterion.evaluate(window) for window in windows]


def normalize(values: Sequence[float]) -> list[float]:
    """Affine rescaling of ``values`` onto [0, 1] (constant -> all zeros)."""
    low, high = min(values), max(values)
    if high - low <= 1e-12:
        return [0.0] * len(values)
    return [(value - low) / (high - low) for value in values]


def weighted_choice(
    windows: Sequence[Window], weights: dict[Criterion, float]
) -> Window:
    """The window minimizing a weighted sum of normalized criteria.

    Each criterion is normalized to [0, 1] over the given set before
    weighting, so weights express *relative importance* rather than unit
    conversions.  Weights must be non-negative and not all zero.
    """
    if not windows:
        raise ValueError("weighted_choice() requires at least one window")
    if not weights:
        raise ValueError("weighted_choice() requires at least one criterion weight")
    if any(weight < 0 for weight in weights.values()):
        raise ValueError("criterion weights must be non-negative")
    total_weight = sum(weights.values())
    if total_weight <= 0:
        raise ValueError("criterion weights must not all be zero")

    scores = [0.0] * len(windows)
    raw_scores = [0.0] * len(windows)
    for criterion, weight in weights.items():
        if weight == 0:
            continue
        values = _values(windows, criterion)
        for index, value in enumerate(normalize(values)):
            scores[index] += weight * value
            raw_scores[index] += weight * values[index]
    # Normalization collapses near-ties (its constant-list guard maps value
    # spreads below 1e-12 to all zeros), so break normalized-score ties by
    # the raw weighted sum: for a pure single-criterion weight this makes
    # the choice the exact argmin, not merely an epsilon-close one.
    best_index = min(
        range(len(windows)), key=lambda index: (scores[index], raw_scores[index])
    )
    return windows[best_index]


def lexicographic_choice(
    windows: Sequence[Window],
    criteria: Sequence[Criterion],
    tolerance: float = 0.0,
) -> Window:
    """Best window by strict criterion priority.

    Filter to the windows within ``tolerance`` (relative) of the best value
    on the first criterion, then recurse on the next criterion, and so on;
    the first window of the final survivors wins.  ``tolerance=0`` is the
    classical lexicographic order; a small tolerance (e.g. 0.05) lets a
    slightly-worse primary value buy a much better secondary one.
    """
    if not windows:
        raise ValueError("lexicographic_choice() requires at least one window")
    if not criteria:
        raise ValueError("lexicographic_choice() requires at least one criterion")
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    survivors = list(windows)
    for criterion in criteria:
        values = _values(survivors, criterion)
        best = min(values)
        cut = best + tolerance * max(abs(best), 1e-12) + 1e-12
        survivors = [
            window for window, value in zip(survivors, values) if value <= cut
        ]
        if len(survivors) == 1:
            break
    return survivors[0]


def dominates(
    a: Window, b: Window, criteria: Sequence[Criterion], epsilon: float = 1e-9
) -> bool:
    """Whether ``a`` Pareto-dominates ``b``: no worse everywhere, better somewhere."""
    strictly_better = False
    for criterion in criteria:
        value_a = criterion.evaluate(a)
        value_b = criterion.evaluate(b)
        if value_a > value_b + epsilon:
            return False
        if value_a < value_b - epsilon:
            strictly_better = True
    return strictly_better


def pareto_front(
    windows: Sequence[Window], criteria: Sequence[Criterion]
) -> list[Window]:
    """The non-dominated subset of ``windows`` under ``criteria``.

    Preserves the input order among survivors.  Duplicate criterion
    vectors all survive (none dominates the other), so callers comparing
    alternatives never lose a distinct window silently.
    """
    if not criteria:
        raise ValueError("pareto_front() requires at least one criterion")
    front: list[Window] = []
    for candidate in windows:
        if any(dominates(other, candidate, criteria) for other in windows):
            continue
        front.append(candidate)
    return front


def constrained_best(
    windows: Sequence[Window],
    objective: Criterion,
    limits: dict[Criterion, float],
) -> Optional[Window]:
    """Best window by ``objective`` among those meeting every upper limit.

    This is the epsilon-constraint combinator: e.g. the earliest finish
    among alternatives costing at most 1200.  Returns ``None`` when no
    window satisfies all limits.
    """
    feasible = [
        window
        for window in windows
        if all(
            criterion.evaluate(window) <= limit + 1e-9
            for criterion, limit in limits.items()
        )
    ]
    if not feasible:
        return None
    return min(feasible, key=objective.evaluate)
