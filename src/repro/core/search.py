"""High-level search facade: one entry point for every criterion.

``find_window(job, pool, criterion)`` dispatches to the right algorithm /
extractor combination, including the *maximizing* direction VO
administrators need ("VO administrators in their turn are interested in
finding extreme alternatives characteristics values (e.g., total cost,
total execution time) to form more flexible ... combination of
alternatives", Section 2.1).  Minimization covers every criterion;
maximization is provided where it is well-defined under a budget — the
additive criteria (cost, processor time, energy) and the start time
(latest feasible start).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.aep import aep_scan
from repro.core.algorithms.amp import AMP
from repro.core.algorithms.base import JobLike
from repro.core.algorithms.mincost import MinCost
from repro.core.algorithms.minenergy import MinEnergy
from repro.core.algorithms.minfinish import MinFinish
from repro.core.algorithms.minproctime import MinProcTime
from repro.core.algorithms.minruntime import MinRunTime
from repro.core.criteria import Criterion
from repro.core.extractors import EarliestStartExtractor, Extraction, GreedyAdditiveExtractor
from repro.model.slotpool import SlotPool
from repro.model.window import Window

#: Additive per-slot characteristics, for the maximizing direction.
_ADDITIVE_KEYS = {
    Criterion.COST: lambda ws: ws.cost,
    Criterion.PROCESSOR_TIME: lambda ws: ws.required_time,
    Criterion.ENERGY: lambda ws: ws.energy(),
}


class _LatestStartExtractor(EarliestStartExtractor):
    """Feasibility test valued by the *negated* start time."""

    def extract(self, window_start, candidates, request) -> Optional[Extraction]:
        """Best feasible ``n``-subset at this scan step (see class docs)."""
        extraction = super().extract(window_start, candidates, request)
        if extraction is None:
            return None
        return Extraction(value=-window_start, slots=extraction.slots)

    def extract_incremental(self, window_start, candidates, request) -> Optional[Extraction]:
        """Incremental twin of :meth:`extract` — the negation must follow."""
        extraction = super().extract_incremental(window_start, candidates, request)
        if extraction is None:
            return None
        return Extraction(value=-window_start, slots=extraction.slots)


def find_window(
    job: JobLike,
    pool: SlotPool,
    criterion: Criterion,
    *,
    maximize: bool = False,
    exact: bool = False,
    rng: Optional[np.random.Generator] = None,
) -> Optional[Window]:
    """The extreme window for ``criterion`` on ``pool``.

    Parameters
    ----------
    job:
        Job or bare resource request.
    pool:
        Slot pool (or any start-ordered slot iterable wrapped in one).
    criterion:
        The window characteristic to optimize.
    maximize:
        Seek the maximal value instead of the minimal one.  Supported for
        cost, processor time, energy and start time; raises
        ``NotImplementedError`` for runtime/finish (a "slowest window" is
        not a meaningful VO query under a budget cap).
    exact:
        Use the exact extraction variants where the default is a heuristic
        (runtime, finish, processor time, energy).
    rng:
        Randomness source for the simplified MinProcTime (ignored when
        ``exact`` selects the optimizing variant).
    """
    if not maximize:
        if criterion is Criterion.START_TIME:
            return AMP(policy="cheapest" if exact else "first").select(job, pool)
        if criterion is Criterion.COST:
            return MinCost().select(job, pool)
        if criterion is Criterion.RUNTIME:
            return MinRunTime(exact=exact).select(job, pool)
        if criterion is Criterion.FINISH_TIME:
            return MinFinish(exact=exact).select(job, pool)
        if criterion is Criterion.PROCESSOR_TIME:
            if exact:
                return MinProcTime(simplified=False).select(job, pool)
            return MinProcTime(simplified=True, rng=rng).select(job, pool)
        if criterion is Criterion.ENERGY:
            return MinEnergy(exact=exact).select(job, pool)
        if criterion is Criterion.IDLE_TIME:
            from repro.core.algorithms.minidle import MinIdle

            return MinIdle().select(job, pool)
        raise ValueError(f"unhandled criterion {criterion!r}")  # pragma: no cover

    if criterion is Criterion.START_TIME:
        result = aep_scan(job, pool, _LatestStartExtractor())
        return result.window if result is not None else None
    key = _ADDITIVE_KEYS.get(criterion)
    if key is None:
        raise NotImplementedError(
            f"maximization is not defined for criterion {criterion.value!r}"
        )
    extractor = GreedyAdditiveExtractor(key=lambda ws: -key(ws))
    result = aep_scan(job, pool, extractor)
    return result.window if result is not None else None
