"""Vectorized AEP scan: numpy precomputation + a primitive event loop.

The object kernel (:func:`repro.core.aep.aep_scan` over an
:class:`~repro.core.candidates.IncrementalCandidateSet`) is already
linear in the number of slots, but every one of its constant-factor
steps — hardware matching, leg construction, ``fits_from``, expiry
bookkeeping, per-step feasibility — touches Python objects.  This module
removes the objects from the hot path while reproducing the object
kernel's decisions *byte for byte*:

1. **Columnar scan plan** (numpy, O(m), cached): per-request node
   matching, task runtimes, leg costs, expiry times and insertability
   are computed for the whole slot list with column arithmetic on a
   :class:`~repro.model.slotarrays.SlotArrays` snapshot, then frozen
   into primitive lists plus the total orders the per-step structures
   consume (cost order ``(cost, required_time, arrival)``, time order
   ``(required_time, cost, arrival)``).  The plan depends only on the
   request's matching/runtime fields — not on budget or node count — and
   is cached on the snapshot, so re-scanning an unchanged pool for the
   same request (AMP re-runs inside CSA, repeated bench scans) pays only
   the event loop.  Every float is produced by the same IEEE operation
   the object path performs (elementwise ``/`` and ``*`` match scalar
   ``/`` and ``*`` exactly; the one non-reproducible op,
   ``performance ** 2`` inside ``CpuNode.power``, is precomputed per
   node in Python).
2. **Event loop** (pure-primitive Python): one pass over the matching
   slots maintaining the alive-candidate count, an expiry pointer over
   the pre-sorted expiry order (valid because the slot list is strictly
   start-ordered — anything else falls back to the object kernel), and
   small sorted-rank structures per criterion.
3. **Skip bounds**: the runtime/finish/greedy criteria only run their
   extraction walk at steps a provable lower bound says could still win.
   The runtime criteria use a *budget-aware* certificate: a window
   beating the incumbent must consist of candidates with runtime below
   ``best − ε`` (a threshold that is constant between improvements), so
   the loop maintains the n-cheapest-cost sum over exactly that set and
   skips while it exceeds the budget.  Skipped steps provably cannot
   improve the incumbent, so the scan's outcome is identical to
   evaluating every step.
4. **Materialization**: ``Slot``/``WindowSlot`` objects are built only
   for the winning step, from the snapshot's slot list and the
   precomputed runtime/cost floats.

Dispatch (:func:`vectorized_scan`) accepts exactly the extractor types
whose extraction it replays — unknown extractors, subclasses, random
selection and non-sorted slot inputs return :data:`UNSUPPORTED` and the
caller falls back to the object kernel.  Set
``REPRO_SCAN_KERNEL=object`` to disable the vector path globally (the
equivalence suite runs both ways in CI).
"""

from __future__ import annotations

import os
from bisect import bisect_left, insort
from dataclasses import dataclass
from heapq import heapify, heappop, heappush, heapreplace
from typing import Optional

import numpy as np

from repro.core.extractors import (
    EarliestFinishExtractor,
    EarliestStartExtractor,
    GreedyAdditiveExtractor,
    MinRuntimeExactExtractor,
    MinRuntimeSubstitutionExtractor,
    MinTotalCostExtractor,
    _budget_of,
)
from repro.model.job import ResourceRequest
from repro.model.slot import TIME_EPSILON
from repro.model.slotarrays import SlotArrays
from repro.model.slotpool import SlotPool
from repro.model.window import Window, WindowSlot

#: Must match :data:`repro.core.aep.VALUE_EPSILON` (asserted by tests);
#: duplicated here because :mod:`repro.core.aep` imports this module.
VALUE_EPSILON = 1e-12

#: Relative slack applied to the skip bounds that compare float sums
#: accumulated in a different order than the extraction accumulates
#: them.  The orders differ by a few ulps at most; this margin is many
#: orders of magnitude above that, and it always widens the "must
#: evaluate" region, so a skipped step provably cannot beat the
#: incumbent.
_BOUND_SLACK = 1e-9

#: Sentinel: the extractor/input combination is not vectorizable; the
#: caller must run the object kernel.
UNSUPPORTED = object()

#: Environment switch: ``REPRO_SCAN_KERNEL=object`` forces the fallback.
KERNEL_ENV = "REPRO_SCAN_KERNEL"

#: Dispatch telemetry for tests and the CI smoke job: counts of scans
#: served by the vector kernel vs. handed back to the object kernel,
#: of scan plans computed vs. reused from a snapshot's cache (the
#: reuse the rolling-horizon broker banks on between mutations), and of
#: the batched entry points' request-class grouping: how many jobs
#: entered a grouped call, how many distinct scan classes they folded
#: into, how many rode another class member's result for free, and how
#: many classes were served by a shared multi-budget sweep
#: (:func:`repro.core.batchscan.batch_aep_scan`).
scan_counters = {
    "vectorized": 0,
    "fallback": 0,
    "plans_built": 0,
    "plans_reused": 0,
    "grouped_jobs": 0,
    "grouped_classes": 0,
    "grouped_shared": 0,
    "batch_sweeps": 0,
    "batch_sweep_classes": 0,
}

#: Per-snapshot plan cache bound.  A broker cycle scans one snapshot
#: for every queued request shape, so the cache is a dict keyed by
#: :func:`_plan_key` rather than a single slot (which thrashed across
#: interleaved shapes); FIFO-evicted beyond this many entries to keep
#: snapshot memory bounded over soak runs.
PLAN_CACHE_LIMIT = 64


def kernel_enabled() -> bool:
    """Whether the vector kernel participates in dispatch."""
    return os.environ.get(KERNEL_ENV, "vector") != "object"


@dataclass(frozen=True)
class VectorScanResult:
    """Field-compatible precursor of :class:`repro.core.aep.ScanResult`."""

    window: Window
    value: float
    steps: int
    slots_scanned: int
    candidate_peak: int
    candidate_inserts: int
    candidate_expiries: int


def _strategy_of(extractor) -> Optional[tuple]:
    """The replay strategy for ``extractor``, or ``None`` if unknown.

    Matches exact types only: a subclass may override ``extract`` (e.g.
    the maximizing ``_LatestStartExtractor``), so anything derived falls
    back to the object kernel.
    """
    kind = type(extractor)
    if kind is EarliestStartExtractor:
        return ("cheapest", True)
    if kind is MinTotalCostExtractor:
        return ("cheapest", False)
    if kind is MinRuntimeSubstitutionExtractor:
        return ("walk", "substitution", False)
    if kind is MinRuntimeExactExtractor:
        return ("walk", "exact", False)
    if kind is EarliestFinishExtractor:
        inner = type(extractor._runtime)
        if inner is MinRuntimeSubstitutionExtractor:
            return ("walk", "substitution", True)
        if inner is MinRuntimeExactExtractor:
            return ("walk", "exact", True)
        return None
    if kind is GreedyAdditiveExtractor:
        if extractor.key_name in GreedyAdditiveExtractor.VECTOR_KEYS:
            return ("greedy", extractor.key_name, extractor._max_rounds)
        return None
    return None


def _resolve_arrays(slots):
    """``(SlotArrays, slot object list)`` for the input, or ``None``."""
    if isinstance(slots, SlotPool):
        arrays = slots.as_arrays()
        return arrays, arrays.slot_objects()
    if isinstance(slots, (list, tuple)):
        materialized = list(slots)
        return SlotArrays.from_slots(materialized), materialized
    return None


class _ScanPlan:
    """Request-derived scan columns, frozen into primitive containers.

    Everything here depends only on the snapshot and the request's
    matching/runtime fields — budget, node count and ``stop_at_first``
    stay in the per-scan loop — so one plan serves every scan of the
    same (pool snapshot, request shape) pair.  ``extras`` holds the
    strategy-specific orders (time ranks, greedy objective ranks),
    attached lazily the first time a strategy needs them.
    """

    __slots__ = (
        "total",
        "count",
        "mpos",
        "loop_start",
        "loop_cand",
        "expiry_times",
        "expiry_cands",
        "cand_crank",
        "cand_by_crank",
        "cost_by_crank",
        "req_by_crank",
        "cand_slot",
        "req_list",
        "cost_list",
        "req_c",
        "cost_c",
        "cand_node_row",
        "extras",
    )


def _plan_key(request: ResourceRequest) -> tuple:
    return (
        request.reservation_time,
        request.reference_performance,
        request.deadline,
        request.min_performance,
        request.min_clock_speed,
        request.min_ram,
        request.min_disk,
        request.required_os,
        request.max_price_per_unit,
    )


def _plan_for(arrays: SlotArrays, request: ResourceRequest) -> Optional[_ScanPlan]:
    """The cached scan plan, or ``None`` when the slots are not sorted."""
    cache = getattr(arrays, "_plan_cache", None)
    if cache is None:
        cache = {}
        arrays._plan_cache = cache
    key = _plan_key(request)
    plan = cache.get(key, UNSUPPORTED)
    if plan is not UNSUPPORTED:
        scan_counters["plans_reused"] += 1
        return plan
    start_all = arrays.start
    total = arrays.slot_count
    if getattr(arrays, "_plan_unsorted", False) or (
        total > 1 and not bool((start_all[1:] >= start_all[:-1]).all())
    ):
        # Slot lists with (tolerated or raising) start-order wobble keep
        # the object kernel's slot-by-slot order check; the expiry
        # pointer below also relies on non-decreasing starts.  The
        # verdict is request-independent, so it is flagged once per
        # snapshot instead of per plan key.
        arrays._plan_unsorted = True
        return None

    row = arrays.node_row
    match_node = arrays.match_mask(request)
    factor = request.reservation_time * request.reference_performance
    req_node = factor / arrays.performance
    cost_node = arrays.price * req_node
    deadline = request.deadline

    mpos = np.flatnonzero(match_node[row])
    mrow = row[mpos]
    start_m = start_all[mpos]
    req_m = req_node[mrow]
    insertable = (arrays.end[mpos] - start_m) >= (req_m - TIME_EPSILON)
    if deadline is not None:
        insertable &= ~((start_m + req_m) > (deadline + TIME_EPSILON))

    cpos = mpos[insertable]
    crow = mrow[insertable]
    req_c = req_m[insertable]
    cost_c = cost_node[crow]
    expire_c = arrays.end[cpos] - req_c
    if deadline is not None:
        deadline_expire = deadline - req_c
        expire_c = np.where(deadline_expire < expire_c, deadline_expire, expire_c)

    count = int(cpos.size)
    cand_of = np.where(insertable, np.cumsum(insertable) - 1, -1)
    # Total order matching the incremental kernel's cost list:
    # (cost, required_time, arrival) — np.lexsort is stable, so arrival
    # (the array index) is the implicit final key.
    cost_order = np.lexsort((req_c, cost_c))
    crank = np.empty(count, dtype=np.int64)
    crank[cost_order] = np.arange(count)
    # Starts are non-decreasing, so candidates expire in precomputed
    # order and one pointer over this order replaces an expiry heap.
    expiry_order = np.argsort(expire_c, kind="stable")

    plan = _ScanPlan()
    plan.total = total
    plan.count = count
    plan.mpos = mpos
    plan.loop_start = start_m.tolist()
    plan.loop_cand = cand_of.tolist()
    plan.expiry_times = expire_c[expiry_order].tolist()
    plan.expiry_cands = expiry_order.tolist()
    plan.cand_crank = crank.tolist()
    plan.cand_by_crank = cost_order.tolist()
    plan.cost_by_crank = cost_c[cost_order].tolist()
    plan.req_by_crank = req_c[cost_order].tolist()
    plan.cand_slot = cpos.tolist()
    plan.req_list = req_c.tolist()
    plan.cost_list = cost_c.tolist()
    plan.req_c = req_c
    plan.cost_c = cost_c
    plan.cand_node_row = crow
    plan.extras = {}
    if len(cache) >= PLAN_CACHE_LIMIT:
        cache.pop(next(iter(cache)))
    cache[key] = plan
    scan_counters["plans_built"] += 1
    return plan


def _time_extras(plan: _ScanPlan) -> dict:
    """Time-order ranks: (required_time, cost, arrival), lazily cached."""
    extras = plan.extras.get("time")
    if extras is None:
        time_order = np.lexsort((plan.cost_c, plan.req_c))
        trank = np.empty(plan.count, dtype=np.int64)
        trank[time_order] = np.arange(plan.count)
        extras = {
            "cand_trank": trank.tolist(),
            "cand_by_trank": time_order.tolist(),
            "req_by_trank": plan.req_c[time_order].tolist(),
            "cost_by_trank": plan.cost_c[time_order].tolist(),
        }
        plan.extras["time"] = extras
    return extras


def _greedy_extras(plan: _ScanPlan, arrays: SlotArrays, key_name: str) -> dict:
    """Objective-key ranks for the greedy criterion, lazily cached."""
    cache_key = "greedy:" + key_name
    extras = plan.extras.get(cache_key)
    if extras is None:
        if key_name == "energy":
            key_c = arrays.power[plan.cand_node_row] * plan.req_c
        else:
            key_c = plan.req_c
        key_order = np.argsort(key_c, kind="stable")
        krank = np.empty(plan.count, dtype=np.int64)
        krank[key_order] = np.arange(plan.count)
        extras = {
            "cand_krank": krank.tolist(),
            "key_by_krank": key_c[key_order].tolist(),
            "key_list": key_c.tolist(),
        }
        plan.extras[cache_key] = extras
    return extras


def vectorized_scan(
    request: ResourceRequest,
    slots,
    extractor,
    *,
    stop_at_first: bool = False,
):
    """Run the vector kernel, or return :data:`UNSUPPORTED`.

    Returns a :class:`VectorScanResult`, ``None`` (no feasible window) or
    :data:`UNSUPPORTED` (caller must use the object kernel).
    """
    if not kernel_enabled():
        scan_counters["fallback"] += 1
        return UNSUPPORTED
    strategy = _strategy_of(extractor)
    if strategy is None:
        scan_counters["fallback"] += 1
        return UNSUPPORTED
    resolved = _resolve_arrays(slots)
    if resolved is None:
        scan_counters["fallback"] += 1
        return UNSUPPORTED
    arrays, slot_list = resolved
    plan = _plan_for(arrays, request)
    if plan is None:
        scan_counters["fallback"] += 1
        return UNSUPPORTED
    scan_counters["vectorized"] += 1

    n = request.node_count
    budget = _budget_of(request)
    kind = strategy[0]
    if kind == "cheapest":
        outcome = _run_cheapest(plan, n, budget, stop_at_first, strategy[1])
        best_cranks = outcome[1]
        best_cands = (
            None
            if best_cranks is None
            else [plan.cand_by_crank[r] for r in best_cranks]
        )
    elif kind == "walk":
        exact = strategy[1] == "exact"
        if strategy[2]:
            outcome = _run_walk_finish(plan, n, budget, stop_at_first, exact)
        else:
            outcome = _run_walk_budget(plan, n, budget, stop_at_first, exact)
        best_cands = outcome[1]
    else:  # greedy
        extras = _greedy_extras(plan, arrays, strategy[1])
        outcome = _run_greedy(plan, extras, n, budget, strategy[2], stop_at_first)
        best_cands = outcome[1]

    best_value, _, best_start, steps, peak, inserted, expired, break_pos = outcome
    if best_cands is None:
        return None
    return _materialize(
        plan,
        slot_list,
        best_cands,
        best_value,
        best_start,
        steps,
        peak,
        inserted,
        expired,
        break_pos,
    )


def _materialize(
    plan,
    slot_list,
    best_cands,
    best_value,
    best_start,
    steps,
    peak,
    inserted,
    expired,
    break_pos,
) -> VectorScanResult:
    """Build the winning :class:`VectorScanResult` from candidate indices.

    Shared by the per-request scan above and the batched entry point
    (:mod:`repro.core.batchscan`), which resolves several budgets from
    one sweep and materializes each winner through this tail.
    """
    scanned = int(plan.mpos[break_pos]) + 1 if break_pos >= 0 else plan.total
    cand_slot = plan.cand_slot
    req_list = plan.req_list
    cost_list = plan.cost_list
    legs = tuple(
        WindowSlot(
            slot=slot_list[cand_slot[c]],
            required_time=req_list[c],
            cost=cost_list[c],
        )
        for c in best_cands
    )
    return VectorScanResult(
        window=Window(start=best_start, slots=legs),
        value=best_value,
        steps=steps,
        slots_scanned=scanned,
        candidate_peak=peak,
        candidate_inserts=inserted,
        candidate_expiries=expired,
    )


# ----------------------------------------------------------------------
# Criterion loops.  All of them walk the matching slots once, expiring
# candidates through the shared pointer discipline; they differ only in
# the per-step extraction replay.  The top-n structures keep the n
# smallest alive ranks in a sorted list, every other alive rank in a
# lazy min-heap (entries of expired candidates are flagged and discarded
# on pop), so membership changes are O(log) amortized.
# ----------------------------------------------------------------------
def _run_cheapest(plan, n, budget, stop_at_first, start_valued):
    """Start-time / total-cost criteria: the n cheapest alive + exact sum.

    ``cheap_sum`` is recomputed over the sorted member ranks on every
    membership change — the same ascending-cost sequential summation
    ``IncrementalCandidateSet.feasible_cheapest`` performs, so the
    budget verdict and the MinTotalCost value are byte-identical.
    """
    loop_start = plan.loop_start
    loop_cand = plan.loop_cand
    expiry_times = plan.expiry_times
    expiry_cands = plan.expiry_cands
    cand_crank = plan.cand_crank
    cost_by_crank = plan.cost_by_crank
    total_c = plan.count
    topn: list[int] = []
    beyond: list[int] = []
    member = set()
    dead = bytearray(total_c)  # indexed by cost rank
    cheap_sum = 0.0
    pointer = 0
    alive = inserted = expired = peak = steps = 0
    best_value = float("inf")
    best_start = 0.0
    best_cranks = None
    break_pos = -1
    for pos, window_start in enumerate(loop_start):
        threshold = window_start - TIME_EPSILON
        while pointer < total_c and expiry_times[pointer] < threshold:
            rank = cand_crank[expiry_cands[pointer]]
            pointer += 1
            expired += 1
            alive -= 1
            dead[rank] = 1
            if rank in member:
                member.discard(rank)
                topn.remove(rank)
                while beyond:
                    refill = heappop(beyond)
                    if not dead[refill]:
                        insort(topn, refill)
                        member.add(refill)
                        break
                cheap_sum = 0.0
                for r in topn:
                    cheap_sum += cost_by_crank[r]
        cand = loop_cand[pos]
        if cand < 0:
            continue
        rank = cand_crank[cand]
        inserted += 1
        alive += 1
        if alive > peak:
            peak = alive
        if len(topn) < n:
            insort(topn, rank)
            member.add(rank)
            cheap_sum = 0.0
            for r in topn:
                cheap_sum += cost_by_crank[r]
        elif rank < topn[-1]:
            evicted = topn.pop()
            member.discard(evicted)
            heappush(beyond, evicted)
            insort(topn, rank)
            member.add(rank)
            cheap_sum = 0.0
            for r in topn:
                cheap_sum += cost_by_crank[r]
        else:
            heappush(beyond, rank)
        if alive < n:
            continue
        steps += 1
        if cheap_sum > budget:
            continue
        value = window_start if start_valued else cheap_sum
        if value < best_value - VALUE_EPSILON:
            best_value = value
            best_start = window_start
            best_cranks = tuple(topn)
            if stop_at_first:
                break_pos = pos
                break
    return (
        best_value,
        best_cranks,
        best_start,
        steps,
        peak,
        inserted,
        expired,
        break_pos,
    )


def _run_cheapest_multi(plan, n, budgets, stop_at_first, start_valued):
    """One candidate-evolution sweep serving several budgets at once.

    ``budgets`` must be sorted ascending and distinct.  The candidate
    evolution of :func:`_run_cheapest` — expiry pointer, top-n/beyond
    structures, ``cheap_sum`` — does not depend on the budget, so one
    sweep replays every budget's verdicts: at each step the feasible
    budgets are exactly the suffix ``budgets[bisect_left(budgets,
    cheap_sum):]`` (feasible iff ``cheap_sum <= budget``, the identical
    comparison the single-budget loop makes).  Entry ``j`` of the
    returned list is byte-identical to ``_run_cheapest(plan, n,
    budgets[j], stop_at_first, start_valued)``:

    - ``stop_at_first``: each budget resolves at its first feasible
      step with the running counters snapshot and that step as
      ``break_pos``; larger budgets resolve no later than smaller ones,
      so the resolved set is always a suffix and the sweep stops once
      the smallest budget resolves.
    - full sweep, start-valued: window starts are non-decreasing, so the
      first feasible step's extraction is final for that budget (a later
      start can never satisfy ``value < best - VALUE_EPSILON``); the
      counters run to the end of the scan.
    - full sweep, cost-valued: every feasible budget replays the exact
      per-step improvement comparison, because ``cheap_sum`` may keep
      shrinking after the first feasible step.
    """
    loop_start = plan.loop_start
    loop_cand = plan.loop_cand
    expiry_times = plan.expiry_times
    expiry_cands = plan.expiry_cands
    cand_crank = plan.cand_crank
    cost_by_crank = plan.cost_by_crank
    total_c = plan.count
    topn: list[int] = []
    beyond: list[int] = []
    member = set()
    dead = bytearray(total_c)  # indexed by cost rank
    cheap_sum = 0.0
    pointer = 0
    alive = inserted = expired = peak = steps = 0
    count_b = len(budgets)
    largest = budgets[-1]
    best_value = [float("inf")] * count_b
    best_start = [0.0] * count_b
    best_cranks: list = [None] * count_b
    outcomes: list = [None] * count_b
    boundary = count_b  # budgets[boundary:] already resolved (suffix)
    for pos, window_start in enumerate(loop_start):
        threshold = window_start - TIME_EPSILON
        while pointer < total_c and expiry_times[pointer] < threshold:
            rank = cand_crank[expiry_cands[pointer]]
            pointer += 1
            expired += 1
            alive -= 1
            dead[rank] = 1
            if rank in member:
                member.discard(rank)
                topn.remove(rank)
                while beyond:
                    refill = heappop(beyond)
                    if not dead[refill]:
                        insort(topn, refill)
                        member.add(refill)
                        break
                cheap_sum = 0.0
                for r in topn:
                    cheap_sum += cost_by_crank[r]
        cand = loop_cand[pos]
        if cand < 0:
            continue
        rank = cand_crank[cand]
        inserted += 1
        alive += 1
        if alive > peak:
            peak = alive
        if len(topn) < n:
            insort(topn, rank)
            member.add(rank)
            cheap_sum = 0.0
            for r in topn:
                cheap_sum += cost_by_crank[r]
        elif rank < topn[-1]:
            evicted = topn.pop()
            member.discard(evicted)
            heappush(beyond, evicted)
            insort(topn, rank)
            member.add(rank)
            cheap_sum = 0.0
            for r in topn:
                cheap_sum += cost_by_crank[r]
        else:
            heappush(beyond, rank)
        if alive < n:
            continue
        steps += 1
        if cheap_sum > largest:
            continue
        idx = bisect_left(budgets, cheap_sum)
        value = window_start if start_valued else cheap_sum
        if stop_at_first:
            if idx < boundary:
                cranks = tuple(topn)
                for j in range(idx, boundary):
                    outcomes[j] = (
                        value,
                        cranks,
                        window_start,
                        steps,
                        peak,
                        inserted,
                        expired,
                        pos,
                    )
                boundary = idx
                if boundary == 0:
                    break
        elif start_valued:
            if idx < boundary:
                cranks = tuple(topn)
                for j in range(idx, boundary):
                    best_value[j] = value
                    best_start[j] = window_start
                    best_cranks[j] = cranks
                boundary = idx
        else:
            cranks = None
            for j in range(idx, count_b):
                if value < best_value[j] - VALUE_EPSILON:
                    if cranks is None:
                        cranks = tuple(topn)
                    best_value[j] = value
                    best_start[j] = window_start
                    best_cranks[j] = cranks
    for j in range(count_b):
        if outcomes[j] is None:
            outcomes[j] = (
                best_value[j],
                best_cranks[j],
                best_start[j],
                steps,
                peak,
                inserted,
                expired,
                -1,
            )
    return outcomes


def _run_walk_budget(plan, n, budget, stop_at_first, exact):
    """MinRuntime (substitution or exact): budget-aware skip certificate.

    A window improving on ``best`` consists of n candidates whose
    runtimes are all below ``T = best − ε`` and whose costs sum within
    the budget, so the minimum such cost sum is the n cheapest among the
    alive candidates with runtime < T.  ``T`` is constant between
    improvements, which makes that sum maintainable with the standard
    top-n discipline (rebuilt from the alive set on the rare
    improvement); while it exceeds the slack-widened budget — or fewer
    than n candidates qualify — the extraction provably cannot win and
    the step is skipped.
    """
    loop_start = plan.loop_start
    loop_cand = plan.loop_cand
    expiry_times = plan.expiry_times
    expiry_cands = plan.expiry_cands
    cand_crank = plan.cand_crank
    cost_by_crank = plan.cost_by_crank
    req_by_crank = plan.req_by_crank
    req_list = plan.req_list
    if exact:
        extras = _time_extras(plan)
        cand_erank = extras["cand_trank"]
        cand_by_erank = extras["cand_by_trank"]
        req_by_erank = extras["req_by_trank"]
        cost_by_erank = extras["cost_by_trank"]
    else:
        cand_erank = cand_crank
        cand_by_erank = plan.cand_by_crank
        req_by_erank = req_by_crank
        cost_by_erank = cost_by_crank
    total_c = plan.count
    skip_budget = budget + _BOUND_SLACK * (1.0 + abs(budget))
    alive_eval: list[int] = []  # alive candidates as eval-order ranks
    qual_top: list[int] = []  # cost ranks: n cheapest with runtime < T
    qual_beyond: list[int] = []
    qual_member = set()
    dead = bytearray(total_c)  # indexed by cost rank
    qual_sum = 0.0
    threshold_time = float("inf")  # T = best − ε, fixed between improvements
    pointer = 0
    alive = inserted = expired = peak = steps = 0
    best_value = float("inf")
    best_start = 0.0
    best_cands = None
    break_pos = -1
    for pos, window_start in enumerate(loop_start):
        threshold = window_start - TIME_EPSILON
        while pointer < total_c and expiry_times[pointer] < threshold:
            cand = expiry_cands[pointer]
            pointer += 1
            expired += 1
            alive -= 1
            alive_eval.remove(cand_erank[cand])
            rank = cand_crank[cand]
            dead[rank] = 1
            if rank in qual_member:
                qual_member.discard(rank)
                qual_top.remove(rank)
                while qual_beyond:
                    refill = heappop(qual_beyond)
                    if not dead[refill]:
                        insort(qual_top, refill)
                        qual_member.add(refill)
                        break
                qual_sum = 0.0
                for r in qual_top:
                    qual_sum += cost_by_crank[r]
        cand = loop_cand[pos]
        if cand < 0:
            continue
        insort(alive_eval, cand_erank[cand])
        inserted += 1
        alive += 1
        if alive > peak:
            peak = alive
        if req_list[cand] < threshold_time:
            rank = cand_crank[cand]
            if len(qual_top) < n:
                insort(qual_top, rank)
                qual_member.add(rank)
                qual_sum = 0.0
                for r in qual_top:
                    qual_sum += cost_by_crank[r]
            elif rank < qual_top[-1]:
                evicted = qual_top.pop()
                qual_member.discard(evicted)
                heappush(qual_beyond, evicted)
                insort(qual_top, rank)
                qual_member.add(rank)
                qual_sum = 0.0
                for r in qual_top:
                    qual_sum += cost_by_crank[r]
            else:
                heappush(qual_beyond, rank)
        if alive < n:
            continue
        steps += 1
        if len(qual_top) < n or qual_sum > skip_budget:
            continue  # no qualifying subset can beat the incumbent
        times = [req_by_erank[r] for r in alive_eval]
        costs = [cost_by_erank[r] for r in alive_eval]
        if exact:
            extraction = _exact_sweep(times, costs, n, budget)
        else:
            extraction = _substitution_walk(times, costs, n, budget)
        if extraction is None:
            continue
        value, positions = extraction
        if value < best_value - VALUE_EPSILON:
            best_value = value
            best_start = window_start
            best_cands = [cand_by_erank[alive_eval[p]] for p in positions]
            if stop_at_first:
                break_pos = pos
                break
            # The threshold tightened: rebuild the qualifying top-n from
            # the alive set (dead flags stay valid — candidates expire
            # at most once, so a flagged rank can never be alive again).
            threshold_time = best_value - VALUE_EPSILON
            if exact:
                alive_cranks = sorted(
                    cand_crank[cand_by_erank[r]] for r in alive_eval
                )
            else:
                alive_cranks = alive_eval
            qualifying = [
                r for r in alive_cranks if req_by_crank[r] < threshold_time
            ]
            qual_top = qualifying[:n]
            qual_member = set(qual_top)
            qual_beyond = qualifying[n:]
            heapify(qual_beyond)
            qual_sum = 0.0
            for r in qual_top:
                qual_sum += cost_by_crank[r]
    return (
        best_value,
        best_cands,
        best_start,
        steps,
        peak,
        inserted,
        expired,
        break_pos,
    )


def _run_walk_finish(plan, n, budget, stop_at_first, exact):
    """MinFinish (start + runtime): bound by the n-th shortest runtime.

    The finish-time improvement threshold shifts with every window start,
    so the fixed-threshold certificate of :func:`_run_walk_budget` does
    not apply; instead each step is bounded by ``start + (n-th shortest
    alive runtime)``, an exact lower bound on any extraction's finish
    time (float ``+`` is monotone, so no slack is needed).
    """
    loop_start = plan.loop_start
    loop_cand = plan.loop_cand
    expiry_times = plan.expiry_times
    expiry_cands = plan.expiry_cands
    extras = _time_extras(plan)
    cand_trank = extras["cand_trank"]
    req_by_trank = extras["req_by_trank"]
    if exact:
        cand_erank = cand_trank
        cand_by_erank = extras["cand_by_trank"]
        req_by_erank = req_by_trank
        cost_by_erank = extras["cost_by_trank"]
    else:
        cand_erank = plan.cand_crank
        cand_by_erank = plan.cand_by_crank
        req_by_erank = plan.req_by_crank
        cost_by_erank = plan.cost_by_crank
    total_c = plan.count
    alive_eval: list[int] = []
    topn: list[int] = []  # time ranks: the n shortest alive runtimes
    beyond: list[int] = []
    member = set()
    dead = bytearray(total_c)  # indexed by time rank
    pointer = 0
    alive = inserted = expired = peak = steps = 0
    best_value = float("inf")
    best_start = 0.0
    best_cands = None
    break_pos = -1
    for pos, window_start in enumerate(loop_start):
        threshold = window_start - TIME_EPSILON
        while pointer < total_c and expiry_times[pointer] < threshold:
            cand = expiry_cands[pointer]
            pointer += 1
            expired += 1
            alive -= 1
            alive_eval.remove(cand_erank[cand])
            rank = cand_trank[cand]
            dead[rank] = 1
            if rank in member:
                member.discard(rank)
                topn.remove(rank)
                while beyond:
                    refill = heappop(beyond)
                    if not dead[refill]:
                        insort(topn, refill)
                        member.add(refill)
                        break
        cand = loop_cand[pos]
        if cand < 0:
            continue
        insort(alive_eval, cand_erank[cand])
        rank = cand_trank[cand]
        inserted += 1
        alive += 1
        if alive > peak:
            peak = alive
        if len(topn) < n:
            insort(topn, rank)
            member.add(rank)
        elif rank < topn[-1]:
            evicted = topn.pop()
            member.discard(evicted)
            heappush(beyond, evicted)
            insort(topn, rank)
            member.add(rank)
        else:
            heappush(beyond, rank)
        if alive < n:
            continue
        steps += 1
        bound = window_start + req_by_trank[topn[-1]]
        if not (bound < best_value - VALUE_EPSILON):
            continue
        times = [req_by_erank[r] for r in alive_eval]
        costs = [cost_by_erank[r] for r in alive_eval]
        if exact:
            extraction = _exact_sweep(times, costs, n, budget)
        else:
            extraction = _substitution_walk(times, costs, n, budget)
        if extraction is None:
            continue
        value, positions = extraction
        value = window_start + value
        if value < best_value - VALUE_EPSILON:
            best_value = value
            best_start = window_start
            best_cands = [cand_by_erank[alive_eval[p]] for p in positions]
            if stop_at_first:
                break_pos = pos
                break
    return (
        best_value,
        best_cands,
        best_start,
        steps,
        peak,
        inserted,
        expired,
        break_pos,
    )


def _run_greedy(plan, extras, n, budget, max_rounds, stop_at_first):
    """Additive-objective criterion: cheapest-n feasibility + swap search.

    Bounded by the sum of the n smallest alive objective keys (minus
    :data:`_BOUND_SLACK`, covering summation-order drift); the swap
    search replays the object extractor's in-place exchanges exactly.
    """
    loop_start = plan.loop_start
    loop_cand = plan.loop_cand
    expiry_times = plan.expiry_times
    expiry_cands = plan.expiry_cands
    cand_crank = plan.cand_crank
    cost_by_crank = plan.cost_by_crank
    cand_by_crank = plan.cand_by_crank
    cand_krank = extras["cand_krank"]
    key_by_krank = extras["key_by_krank"]
    key_list = extras["key_list"]
    cost_list = plan.cost_list
    total_c = plan.count
    alive_cands: list[int] = []  # alive candidate indices (arrival order)
    cost_top: list[int] = []
    cost_beyond: list[int] = []
    cost_member = set()
    cost_dead = bytearray(total_c)
    key_top: list[int] = []
    key_beyond: list[int] = []
    key_member = set()
    key_dead = bytearray(total_c)
    cheap_sum = 0.0
    key_sum = 0.0
    pointer = 0
    alive = inserted = expired = peak = steps = 0
    best_value = float("inf")
    best_start = 0.0
    best_cands = None
    break_pos = -1
    for pos, window_start in enumerate(loop_start):
        threshold = window_start - TIME_EPSILON
        while pointer < total_c and expiry_times[pointer] < threshold:
            cand = expiry_cands[pointer]
            pointer += 1
            expired += 1
            alive -= 1
            alive_cands.remove(cand)
            rank = cand_crank[cand]
            cost_dead[rank] = 1
            if rank in cost_member:
                cost_member.discard(rank)
                cost_top.remove(rank)
                while cost_beyond:
                    refill = heappop(cost_beyond)
                    if not cost_dead[refill]:
                        insort(cost_top, refill)
                        cost_member.add(refill)
                        break
                cheap_sum = 0.0
                for r in cost_top:
                    cheap_sum += cost_by_crank[r]
            rank = cand_krank[cand]
            key_dead[rank] = 1
            if rank in key_member:
                key_member.discard(rank)
                key_top.remove(rank)
                while key_beyond:
                    refill = heappop(key_beyond)
                    if not key_dead[refill]:
                        insort(key_top, refill)
                        key_member.add(refill)
                        break
                key_sum = 0.0
                for r in key_top:
                    key_sum += key_by_krank[r]
        cand = loop_cand[pos]
        if cand < 0:
            continue
        alive_cands.append(cand)  # candidate indices arrive in order
        inserted += 1
        alive += 1
        if alive > peak:
            peak = alive
        rank = cand_crank[cand]
        if len(cost_top) < n:
            insort(cost_top, rank)
            cost_member.add(rank)
            cheap_sum = 0.0
            for r in cost_top:
                cheap_sum += cost_by_crank[r]
        elif rank < cost_top[-1]:
            evicted = cost_top.pop()
            cost_member.discard(evicted)
            heappush(cost_beyond, evicted)
            insort(cost_top, rank)
            cost_member.add(rank)
            cheap_sum = 0.0
            for r in cost_top:
                cheap_sum += cost_by_crank[r]
        else:
            heappush(cost_beyond, rank)
        rank = cand_krank[cand]
        if len(key_top) < n:
            insort(key_top, rank)
            key_member.add(rank)
            key_sum = 0.0
            for r in key_top:
                key_sum += key_by_krank[r]
        elif rank < key_top[-1]:
            evicted = key_top.pop()
            key_member.discard(evicted)
            heappush(key_beyond, evicted)
            insort(key_top, rank)
            key_member.add(rank)
            key_sum = 0.0
            for r in key_top:
                key_sum += key_by_krank[r]
        else:
            heappush(key_beyond, rank)
        if alive < n:
            continue
        steps += 1
        if cheap_sum > budget:
            continue  # feasible_cheapest would return None
        bound = key_sum - _BOUND_SLACK * (1.0 + abs(key_sum))
        if not (bound < best_value - VALUE_EPSILON):
            continue
        current = [cand_by_crank[r] for r in cost_top]
        in_window = set(current)
        outside = [c for c in alive_cands if c not in in_window]
        value, final = _swap_search(
            current,
            [key_list[c] for c in current],
            [cost_list[c] for c in current],
            outside,
            [key_list[c] for c in outside],
            [cost_list[c] for c in outside],
            budget,
            max_rounds,
        )
        if value < best_value - VALUE_EPSILON:
            best_value = value
            best_start = window_start
            best_cands = final
            if stop_at_first:
                break_pos = pos
                break
    return (
        best_value,
        best_cands,
        best_start,
        steps,
        peak,
        inserted,
        expired,
        break_pos,
    )


# ----------------------------------------------------------------------
# Extraction replays (primitive twins of the object extractors).
# ----------------------------------------------------------------------
def _substitution_walk(times, costs, n, budget):
    """Primitive twin of ``extractors._substitute_runtime``.

    ``times``/``costs`` are the alive candidates in the exact
    ``(cost, required_time, arrival)`` order; returns ``(value,
    positions)`` with positions in the walk's final (swap) order.  The
    first-longest index is maintained across non-swapping iterations —
    it only changes when a swap replaces it, where the object twin
    recomputes the same argmax the next iteration would.
    """
    total = len(times)
    if total < n:
        return None
    cost = 0.0
    for index in range(n):
        cost += costs[index]
    if cost > budget:
        return None
    chosen = list(range(n))
    chosen_times = times[:n]
    chosen_costs = costs[:n]
    longest_index = 0
    longest_time = chosen_times[0]
    for inner in range(1, n):
        if chosen_times[inner] > longest_time:
            longest_time = chosen_times[inner]
            longest_index = inner
    for index in range(n, total):
        short_time = times[index]
        if (
            short_time < longest_time
            and cost - chosen_costs[longest_index] + costs[index] <= budget
        ):
            cost += costs[index] - chosen_costs[longest_index]
            chosen[longest_index] = index
            chosen_times[longest_index] = short_time
            chosen_costs[longest_index] = costs[index]
            longest_index = 0
            longest_time = chosen_times[0]
            for inner in range(1, n):
                if chosen_times[inner] > longest_time:
                    longest_time = chosen_times[inner]
                    longest_index = inner
    return max(chosen_times), chosen


def _exact_sweep(times, costs, n, budget):
    """Primitive twin of ``extractors._exact_runtime_sweep``.

    ``times``/``costs`` in ``(required_time, cost, arrival)`` order;
    returns ``(value, positions)`` with positions in the kept-dict
    insertion order the object extractor produces.
    """
    total = len(times)
    if total < n:
        return None
    heap: list[tuple[float, int]] = []
    kept: dict[int, int] = {}
    cost_sum = 0.0
    for index in range(total):
        cost = costs[index]
        if len(heap) < n:
            heappush(heap, (-cost, index))
            kept[index] = index
            cost_sum += cost
        elif cost < -heap[0][0]:
            _, evicted = heapreplace(heap, (-cost, index))
            cost_sum += cost - costs[evicted]
            kept.pop(evicted)
            kept[index] = index
        if len(heap) == n and cost_sum <= budget:
            chosen = list(kept.values())
            value = times[chosen[0]]
            for position in chosen[1:]:
                if times[position] > value:
                    value = times[position]
            return value, chosen
    return None


def _swap_search(
    current,
    current_keys,
    current_costs,
    outside,
    outside_keys,
    outside_costs,
    budget,
    max_rounds,
):
    """Primitive twin of ``GreedyAdditiveExtractor._swap_search``.

    Mutates and returns ``current`` (candidate indices) in the final
    in-place swap positions; the float updates replicate the object
    implementation operation for operation.
    """
    cost = 0.0
    for value in current_costs:
        cost += value
    out_range = range(len(outside))
    size = len(current)
    for _ in range(max_rounds):
        best_gain = 0.0
        best_swap = None
        for out_index in range(size):
            out_cost = current_costs[out_index]
            out_key = current_keys[out_index]
            headroom = cost - out_cost
            for in_index in out_range:
                if headroom + outside_costs[in_index] > budget:
                    continue
                gain = out_key - outside_keys[in_index]
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best_swap = (out_index, in_index)
        if best_swap is None:
            break
        out_index, in_index = best_swap
        cost += outside_costs[in_index] - current_costs[out_index]
        current[out_index], outside[in_index] = (
            outside[in_index],
            current[out_index],
        )
        current_keys[out_index], outside_keys[in_index] = (
            outside_keys[in_index],
            current_keys[out_index],
        )
        current_costs[out_index], outside_costs[in_index] = (
            outside_costs[in_index],
            current_costs[out_index],
        )
    value = 0.0
    for key in current_keys:
        value += key
    return value, current
