"""Cycle-level batched AEP scan: scan-class grouping and shared sweeps.

The paper's two-phase scheme evaluates phase 1 *per job*, and until this
module the kernel mirrored that: one :func:`repro.core.aep.aep_scan`
call per queued job, rebuilding the candidate evolution N times per
cycle even when N jobs share a request shape.  Heavy-traffic serving
(the ROADMAP north star) makes the *cycle* the unit of kernel work
instead:

1. **Scan-class grouping.**  A scan's outcome is a pure function of
   ``(slots, extractor, stop_at_first)`` and the request fields the scan
   reads — the plan fields (:func:`repro.core.vectorized._plan_key`),
   ``node_count`` and ``effective_budget``.  :func:`scan_class_key`
   captures exactly those fields, so jobs with equal keys receive one
   scan and share the resulting :class:`~repro.core.aep.ScanResult`.
   Sharing is decision-safe downstream: a window conflicts with itself
   (:meth:`repro.model.Window.conflicts_with`), so phase 2 can never
   assign a shared window to two jobs.
2. **Shared multi-budget sweeps.**  For the cheapest-subset criteria
   (earliest-start / min-total-cost), the candidate evolution of
   :func:`repro.core.vectorized._run_cheapest` is budget-independent;
   classes that differ only in budget are served by *one* sweep
   (:func:`repro.core.vectorized._run_cheapest_multi`) that resolves
   every budget's verdict from the shared ``cheap_sum`` stream.
3. **Shared fallback caches.**  Classes the vector kernel cannot serve
   fall back to per-class :func:`~repro.core.aep.aep_scan` calls that
   share one :class:`~repro.core.candidates.LegFactory` per
   ``(reservation_time, reference_performance)`` shape.

Every result is byte-identical to the sequential per-job scan — the
property suite in ``tests/core/test_batchscan.py`` fingerprints both
paths across all stock criteria.  Grouping telemetry lands in
:data:`repro.core.vectorized.scan_counters` (``grouped_jobs``,
``grouped_classes``, ``grouped_shared``, ``batch_sweeps``,
``batch_sweep_classes``).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

from repro.core.aep import ScanResult, aep_scan, request_of
from repro.core.candidates import LegFactory, leg_shape_key
from repro.core.extractors import WindowExtractor, _budget_of
from repro.core.vectorized import (
    _materialize,
    _plan_for,
    _plan_key,
    _resolve_arrays,
    _run_cheapest_multi,
    _strategy_of,
    kernel_enabled,
    scan_counters,
)
from repro.model.job import Job, ResourceRequest
from repro.model.slot import Slot
from repro.model.slotpool import SlotPool

JobLike = Union[Job, ResourceRequest]


def scan_class_key(request: ResourceRequest) -> tuple:
    """The value identity under which two requests receive one scan.

    Two requests with equal keys produce byte-identical scan outcomes
    for any ``(slots, extractor, stop_at_first)``: the scan reads only
    the matching/runtime/deadline fields (all in
    :func:`~repro.core.vectorized._plan_key`), the window width
    ``node_count``, and the budget through
    :attr:`~repro.model.job.ResourceRequest.effective_budget` (the
    extractors' ``_budget_of`` slack is a function of the effective
    budget alone).  Raw ``budget`` is deliberately absent: ``budget=None``
    and an explicit budget equal to the price-based default are the same
    scan.
    """
    return (_plan_key(request), request.node_count, request.effective_budget)


def batch_aep_scan(
    jobs: Iterable[JobLike],
    slots,
    extractor: WindowExtractor,
    *,
    stop_at_first: bool = False,
) -> List[Optional[ScanResult]]:
    """Run the AEP scheme for a whole job batch, one scan per class.

    Parameters
    ----------
    jobs:
        The cycle's jobs (or bare requests), in any order.
    slots:
        Available slots ordered by non-decreasing start time, exactly as
        :func:`~repro.core.aep.aep_scan` requires.  Must be re-iterable
        (a :class:`~repro.model.SlotPool` or a slot list); a one-shot
        iterator is materialized once up front.
    extractor / stop_at_first:
        As for :func:`~repro.core.aep.aep_scan`; shared by every job of
        the batch (one criterion per phase-1 pass, as in the paper).

    Returns
    -------
    list of (ScanResult or None)
        Aligned with ``jobs``.  Jobs of one scan class share the *same*
        result object; callers that mutate results must copy first.
    """
    job_list = list(jobs)
    results: List[Optional[ScanResult]] = [None] * len(job_list)
    if not job_list:
        return results
    if not isinstance(slots, (SlotPool, list, tuple)):
        slots = list(slots)
    requests = [request_of(job) for job in job_list]
    members_by_class: dict[tuple, list[int]] = {}
    for index, request in enumerate(requests):
        members_by_class.setdefault(scan_class_key(request), []).append(index)
    scan_counters["grouped_jobs"] += len(job_list)
    scan_counters["grouped_classes"] += len(members_by_class)
    scan_counters["grouped_shared"] += len(job_list) - len(members_by_class)

    pending = {
        key: requests[members[0]] for key, members in members_by_class.items()
    }
    class_results: dict[tuple, Optional[ScanResult]] = {}
    _scan_multi_budget(pending, slots, extractor, stop_at_first, class_results)
    _scan_fallback(pending, slots, extractor, stop_at_first, class_results)

    for key, members in members_by_class.items():
        result = class_results[key]
        for index in members:
            results[index] = result
    return results


def _scan_multi_budget(pending, slots, extractor, stop_at_first, out) -> None:
    """Serve budget-only-varying class groups from shared sweeps.

    Classes it can serve are moved from ``pending`` into ``out``; the
    rest stay pending for the per-class fallback.  Only the
    cheapest-subset strategies qualify — their candidate evolution is
    budget-independent, which is what lets one sweep answer several
    budgets (see :func:`repro.core.vectorized._run_cheapest_multi`).
    """
    if not kernel_enabled():
        return
    strategy = _strategy_of(extractor)
    if strategy is None or strategy[0] != "cheapest":
        return
    resolved = _resolve_arrays(slots)
    if resolved is None:
        return
    arrays, slot_list = resolved
    start_valued = strategy[1]

    sweep_groups: dict[tuple, list[tuple]] = {}
    for key in pending:
        # key = (plan key, node count, effective budget): same plan and
        # width, different budget -> one sweep.
        sweep_groups.setdefault((key[0], key[1]), []).append(key)
    for group_keys in sweep_groups.values():
        if len(group_keys) < 2:
            continue  # a lone budget gains nothing over the per-class scan
        n = group_keys[0][1]
        plan = _plan_for(arrays, pending[group_keys[0]])
        if plan is None:
            return  # unsorted snapshot: every class must fall back
        budget_values = [_budget_of(pending[key]) for key in group_keys]
        order = sorted(range(len(group_keys)), key=budget_values.__getitem__)
        budgets = [budget_values[position] for position in order]
        outcomes = _run_cheapest_multi(plan, n, budgets, stop_at_first, start_valued)
        scan_counters["vectorized"] += len(group_keys)
        scan_counters["batch_sweeps"] += 1
        scan_counters["batch_sweep_classes"] += len(group_keys)
        for position, outcome in zip(order, outcomes):
            key = group_keys[position]
            out[key] = _result_from_outcome(plan, slot_list, outcome)
            del pending[key]


def _scan_fallback(pending, slots, extractor, stop_at_first, out) -> None:
    """Per-class scans for everything the shared sweep did not serve.

    Each class still pays exactly one :func:`~repro.core.aep.aep_scan`;
    classes sharing a ``(reservation_time, reference_performance)``
    shape share one :class:`~repro.core.candidates.LegFactory` so the
    object kernel computes per-node runtimes and costs once per shape,
    not once per class.  (The vector kernel ignores the factory — its
    plan cache on the snapshot plays the same role.)
    """
    factories: dict[tuple, LegFactory] = {}
    for key, request in pending.items():
        shape = leg_shape_key(request)
        factory = factories.get(shape)
        if factory is None:
            factory = LegFactory(request)
            factories[shape] = factory
        out[key] = aep_scan(
            request,
            slots,
            extractor,
            stop_at_first=stop_at_first,
            leg_factory=factory,
        )
    pending.clear()


def _result_from_outcome(plan, slot_list: List[Slot], outcome) -> Optional[ScanResult]:
    """A shared-sweep outcome tuple as a public :class:`ScanResult`."""
    (
        best_value,
        best_cranks,
        best_start,
        steps,
        peak,
        inserted,
        expired,
        break_pos,
    ) = outcome
    if best_cranks is None:
        return None
    best_cands = [plan.cand_by_crank[rank] for rank in best_cranks]
    vector = _materialize(
        plan,
        slot_list,
        best_cands,
        best_value,
        best_start,
        steps,
        peak,
        inserted,
        expired,
        break_pos,
    )
    return ScanResult(
        window=vector.window,
        value=vector.value,
        steps=vector.steps,
        slots_scanned=vector.slots_scanned,
        candidate_peak=vector.candidate_peak,
        candidate_inserts=vector.candidate_inserts,
        candidate_expiries=vector.candidate_expiries,
    )
