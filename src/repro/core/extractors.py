"""Window extractors: choose the best ``n``-subset of the extended window.

At every step of the AEP scan the algorithm holds an *extended window* — the
set of candidate slots still alive at the current window start — and must
extract from it the best ``n`` slots by the target criterion subject to the
budget ``S`` (the ``getBestWindow`` call of the paper's pseudo code).  This
module implements one extractor per criterion:

* :class:`EarliestStartExtractor` / :class:`MinTotalCostExtractor` — the
  cheapest-``n`` selection (optimal for both start-time and cost criteria);
* :class:`MinRuntimeSubstitutionExtractor` — the paper's substitution
  heuristic (Section 2.2 pseudo code);
* :class:`MinRuntimeExactExtractor` — an exact prefix-sweep alternative we
  add for the ablation study;
* :class:`EarliestFinishExtractor` — start + minimal runtime;
* :class:`RandomWindowExtractor` — the paper's *simplified* MinProcTime
  selection ("a random window is selected");
* :class:`GreedyAdditiveExtractor` — local-search minimization of any
  additive slot characteristic under the budget (optimizing MinProcTime,
  MinEnergy);
* :class:`ExactAdditiveExtractor` — branch-and-bound reference optimum for
  additive criteria, used by tests and small-scale studies.

Every extractor returns an :class:`Extraction` — the criterion value plus
the chosen slots — or ``None`` when no feasible ``n``-subset exists.

Extractors come in two shapes.  The classic ``extract`` takes the alive
candidates as a plain sequence (in scan order) and remains the
compatibility surface for direct callers and order-sensitive selections.
Extractors that can exploit the incrementally maintained candidate
structure additionally implement ``extract_incremental``, which receives
the scan's :class:`~repro.core.candidates.IncrementalCandidateSet` and
consumes its maintained cost/time orders and running cheapest-``n`` sum
instead of re-sorting per step — identical selection (property-tested
against :mod:`repro.core.reference`), strictly less work.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Protocol, Sequence

import numpy as np

from repro.model.job import ResourceRequest
from repro.model.window import COST_EPSILON, WindowSlot

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.candidates import IncrementalCandidateSet


@dataclass(frozen=True)
class Extraction:
    """Result of one extraction: the value to minimize and the window legs."""

    value: float
    slots: tuple[WindowSlot, ...]


class WindowExtractor(Protocol):
    """Callable choosing the best feasible ``n``-subset of the candidates."""

    def extract(
        self,
        window_start: float,
        candidates: Sequence[WindowSlot],
        request: ResourceRequest,
    ) -> Optional[Extraction]:
        """Best feasible subset, or ``None`` when infeasible."""
        ...  # pragma: no cover


def _budget_of(request: ResourceRequest) -> float:
    budget = request.effective_budget
    # Relative slack keeps float summation order from flipping feasibility.
    if budget != float("inf"):
        budget += COST_EPSILON * (1.0 + abs(budget))
    return budget


def runtime_key(ws: WindowSlot) -> float:
    """The task duration of a leg — the default additive objective.

    Module-level (rather than a per-instance lambda) so extractor
    instances survive pickling into worker processes and the vectorized
    kernel can recognize the objective by identity.
    """
    return ws.required_time


def energy_key(ws: WindowSlot) -> float:
    """The energy drawn by a leg (``node.power() * required_time``)."""
    return ws.energy()


def cheapest_subset(
    candidates: Sequence[WindowSlot], n: int, budget: float
) -> Optional[list[WindowSlot]]:
    """The ``n`` cheapest candidates, or ``None`` if they exceed ``budget``.

    Because any feasible subset costs at least as much as the ``n``
    cheapest, this is also the *feasibility oracle*: a window exists at this
    scan step iff the ``n`` cheapest fit into the budget.
    """
    if len(candidates) < n:
        return None
    chosen = sorted(candidates, key=lambda ws: (ws.cost, ws.required_time))[:n]
    if sum(ws.cost for ws in chosen) > budget:
        return None
    return chosen


class EarliestStartExtractor:
    """Start-time extraction: the first feasible window wins.

    Takes the ``n`` cheapest alive candidates.  Because any feasible subset
    costs at least as much as the cheapest one, the first scan step with a
    feasible extraction has the *optimal* (earliest possible) start time.
    This backs ``AMP(policy="cheapest")``; the paper-faithful AMP uses its
    own eviction scan instead (see :mod:`repro.core.algorithms.amp`).
    """

    def extract(
        self,
        window_start: float,
        candidates: Sequence[WindowSlot],
        request: ResourceRequest,
    ) -> Optional[Extraction]:
        """Best feasible ``n``-subset at this scan step (see class docs)."""
        chosen = cheapest_subset(candidates, request.node_count, _budget_of(request))
        if chosen is None:
            return None
        return Extraction(value=window_start, slots=tuple(chosen))

    def extract_incremental(
        self,
        window_start: float,
        candidates: "IncrementalCandidateSet",
        request: ResourceRequest,
    ) -> Optional[Extraction]:
        """Incremental twin of :meth:`extract` (running cheapest-``n`` oracle)."""
        found = candidates.feasible_cheapest(request.node_count, _budget_of(request))
        if found is None:
            return None
        chosen, _ = found
        return Extraction(value=window_start, slots=tuple(chosen))


class MinTotalCostExtractor:
    """Selects the ``n`` cheapest candidates; value is their total cost.

    "For this purpose in the AEP search scheme n slots with the minimum sum
    cost should be chosen" — for an additive cost objective the greedy
    choice is exactly optimal.
    """

    def extract(
        self,
        window_start: float,
        candidates: Sequence[WindowSlot],
        request: ResourceRequest,
    ) -> Optional[Extraction]:
        """Best feasible ``n``-subset at this scan step (see class docs)."""
        chosen = cheapest_subset(candidates, request.node_count, _budget_of(request))
        if chosen is None:
            return None
        return Extraction(value=sum(ws.cost for ws in chosen), slots=tuple(chosen))

    def extract_incremental(
        self,
        window_start: float,
        candidates: "IncrementalCandidateSet",
        request: ResourceRequest,
    ) -> Optional[Extraction]:
        """Incremental twin of :meth:`extract` (running cheapest-``n`` oracle)."""
        found = candidates.feasible_cheapest(request.node_count, _budget_of(request))
        if found is None:
            return None
        chosen, total = found
        return Extraction(value=total, slots=tuple(chosen))


def _substitute_runtime(
    ordered: Sequence[WindowSlot], n: int, budget: float
) -> Optional[Extraction]:
    """The substitution walk over cost-``ordered`` candidates.

    Shared by the sequence and incremental entry points of
    :class:`MinRuntimeSubstitutionExtractor`; the replacement target is
    the *first* longest member, matching ``max(..., key=...)`` of the
    reference implementation.
    """
    if len(ordered) < n:
        return None
    result = list(ordered[:n])
    cost = sum(ws.cost for ws in result)
    if cost > budget:
        return None
    times = [ws.required_time for ws in result]
    for short in ordered[n:]:
        longest_index = 0
        longest_time = times[0]
        for index in range(1, n):
            if times[index] > longest_time:
                longest_time = times[index]
                longest_index = index
        if (
            short.required_time < longest_time
            and cost - result[longest_index].cost + short.cost <= budget
        ):
            cost += short.cost - result[longest_index].cost
            result[longest_index] = short
            times[longest_index] = short.required_time
    return Extraction(value=max(times), slots=tuple(result))


class MinRuntimeSubstitutionExtractor:
    """The paper's substitution heuristic for the minimum-runtime window.

    Start from the ``n`` cheapest candidates, then walk the remaining
    candidates in ascending cost order, each time trying to replace the
    current longest slot with the next candidate when it is shorter and the
    budget still holds.  (The paper's pseudo code tests
    ``resultWindow.cost + shortSlot.cost < S``, which does not subtract the
    removed slot's cost; we implement the evidently intended post-swap cost
    check and note the deviation here.)
    """

    def extract(
        self,
        window_start: float,
        candidates: Sequence[WindowSlot],
        request: ResourceRequest,
    ) -> Optional[Extraction]:
        """Best feasible ``n``-subset at this scan step (see class docs)."""
        ordered = sorted(candidates, key=lambda ws: (ws.cost, ws.required_time))
        return _substitute_runtime(ordered, request.node_count, _budget_of(request))

    def extract_incremental(
        self,
        window_start: float,
        candidates: "IncrementalCandidateSet",
        request: ResourceRequest,
    ) -> Optional[Extraction]:
        """Incremental twin of :meth:`extract` (maintained cost order)."""
        return _substitute_runtime(
            candidates.ordered(), request.node_count, _budget_of(request)
        )


def _exact_runtime_sweep(
    by_time: Sequence[WindowSlot], n: int, budget: float
) -> Optional[Extraction]:
    """The cheapest-``n``-per-prefix sweep over time-``by_time`` candidates."""
    if len(by_time) < n:
        return None
    heap: list[tuple[float, int]] = []  # max-heap by cost via negation
    kept: dict[int, WindowSlot] = {}
    cost_sum = 0.0
    for index, ws in enumerate(by_time):
        if len(heap) < n:
            heapq.heappush(heap, (-ws.cost, index))
            kept[index] = ws
            cost_sum += ws.cost
        elif ws.cost < -heap[0][0]:
            _, evicted = heapq.heapreplace(heap, (-ws.cost, index))
            cost_sum += ws.cost - kept.pop(evicted).cost
            kept[index] = ws
        if len(heap) == n and cost_sum <= budget:
            chosen = list(kept.values())
            return Extraction(
                value=max(w.required_time for w in chosen), slots=tuple(chosen)
            )
    return None


class MinRuntimeExactExtractor:
    """Exact minimum-runtime extraction by a prefix sweep.

    Sort candidates by required time; for growing prefixes keep the ``n``
    cheapest seen so far in a max-heap.  The first prefix whose ``n``
    cheapest fit the budget yields the optimal runtime: any feasible subset
    with a smaller maximal required time would live inside a shorter prefix
    whose cheapest-``n`` test would already have passed.  ``O(m log n)``.
    """

    def extract(
        self,
        window_start: float,
        candidates: Sequence[WindowSlot],
        request: ResourceRequest,
    ) -> Optional[Extraction]:
        """Best feasible ``n``-subset at this scan step (see class docs)."""
        by_time = sorted(candidates, key=lambda ws: (ws.required_time, ws.cost))
        return _exact_runtime_sweep(by_time, request.node_count, _budget_of(request))

    def extract_incremental(
        self,
        window_start: float,
        candidates: "IncrementalCandidateSet",
        request: ResourceRequest,
    ) -> Optional[Extraction]:
        """Incremental twin of :meth:`extract` (maintained time order)."""
        return _exact_runtime_sweep(
            candidates.ordered_by_time(), request.node_count, _budget_of(request)
        )


class EarliestFinishExtractor:
    """Start plus minimal runtime — the MinFinish criterion.

    "The minimum finish time for a window on this set of slots is
    (tStart + minRuntime)"; the runtime part delegates to a runtime
    extractor (the paper's substitution procedure by default).
    """

    def __init__(self, runtime_extractor: Optional[WindowExtractor] = None):
        self._runtime = runtime_extractor or MinRuntimeSubstitutionExtractor()

    def extract(
        self,
        window_start: float,
        candidates: Sequence[WindowSlot],
        request: ResourceRequest,
    ) -> Optional[Extraction]:
        """Best feasible ``n``-subset at this scan step (see class docs)."""
        extraction = self._runtime.extract(window_start, candidates, request)
        if extraction is None:
            return None
        runtime = max(ws.required_time for ws in extraction.slots)
        return Extraction(value=window_start + runtime, slots=extraction.slots)

    def extract_incremental(
        self,
        window_start: float,
        candidates: "IncrementalCandidateSet",
        request: ResourceRequest,
    ) -> Optional[Extraction]:
        """Incremental twin of :meth:`extract` (delegates like it does)."""
        inner = getattr(self._runtime, "extract_incremental", None)
        if inner is not None:
            extraction = inner(window_start, candidates, request)
        else:
            extraction = self._runtime.extract(
                window_start, candidates.scan_ordered(), request
            )
        if extraction is None:
            return None
        runtime = max(ws.required_time for ws in extraction.slots)
        return Extraction(value=window_start + runtime, slots=extraction.slots)


class RandomWindowExtractor:
    """The paper's *simplified* MinProcTime selection: a random window.

    "This implementation is simplified and does not guarantee an optimal
    result and only partially matches the AEP scheme, because a random
    window is selected."  We draw ``attempts`` random ``n``-subsets and
    return the first feasible one; if all draws bust the budget we fall
    back to the ``n`` cheapest (which is feasible whenever anything is).
    The value is the additive characteristic being minimized — total
    processor time by default.
    """

    def __init__(
        self,
        rng: Optional[np.random.Generator] = None,
        key: Callable[[WindowSlot], float] = runtime_key,
        attempts: int = 1,
    ):
        self._rng = rng if rng is not None else np.random.default_rng()
        self._key = key
        self._attempts = max(1, attempts)

    def extract(
        self,
        window_start: float,
        candidates: Sequence[WindowSlot],
        request: ResourceRequest,
    ) -> Optional[Extraction]:
        """Best feasible ``n``-subset at this scan step (see class docs)."""
        n = request.node_count
        budget = _budget_of(request)
        if len(candidates) < n:
            return None
        pool = list(candidates)
        chosen: Optional[list[WindowSlot]] = None
        for _ in range(self._attempts):
            picked_indices = self._rng.choice(len(pool), size=n, replace=False)
            picked = [pool[int(i)] for i in picked_indices]
            if sum(ws.cost for ws in picked) <= budget:
                chosen = picked
                break
        if chosen is None:
            chosen = cheapest_subset(pool, n, budget)
            if chosen is None:
                return None
        return Extraction(
            value=sum(self._key(ws) for ws in chosen), slots=tuple(chosen)
        )


class GreedyAdditiveExtractor:
    """Local-search minimization of an additive slot characteristic.

    Minimizes ``sum(key(slot))`` over ``n``-subsets under the budget — the
    0-1 programming problem of Section 2.1 with ``z_i = key(s_i)``.  Starts
    from the ``n`` cheapest candidates and repeatedly applies the single
    swap (one in, one out) that most reduces the objective while keeping
    the subset affordable, until no improving swap exists.  This is the
    natural generalization of the paper's substitution procedure from a
    bottleneck objective to an additive one.
    """

    #: Objective names the vectorized kernel knows how to precompute as a
    #: numpy column; anything else forces the object-path fallback.
    VECTOR_KEYS = ("required_time", "energy")

    def __init__(
        self,
        key: Callable[[WindowSlot], float] = runtime_key,
        max_rounds: int = 64,
        key_name: Optional[str] = None,
    ):
        self._key = key
        self._max_rounds = max(1, max_rounds)
        if key_name is None:
            if key is runtime_key:
                key_name = "required_time"
            elif key is energy_key:
                key_name = "energy"
        self.key_name = key_name

    def extract(
        self,
        window_start: float,
        candidates: Sequence[WindowSlot],
        request: ResourceRequest,
    ) -> Optional[Extraction]:
        """Best feasible ``n``-subset at this scan step (see class docs)."""
        n = request.node_count
        budget = _budget_of(request)
        chosen = cheapest_subset(candidates, n, budget)
        if chosen is None:
            return None
        in_window = set(map(id, chosen))
        outside = [ws for ws in candidates if id(ws) not in in_window]
        return self._swap_search(list(chosen), outside, budget)

    def extract_incremental(
        self,
        window_start: float,
        candidates: "IncrementalCandidateSet",
        request: ResourceRequest,
    ) -> Optional[Extraction]:
        """Incremental twin of :meth:`extract` (running cheapest-``n`` oracle)."""
        found = candidates.feasible_cheapest(request.node_count, _budget_of(request))
        if found is None:
            return None
        chosen, _ = found
        in_window = set(map(id, chosen))
        outside = [ws for ws in candidates.scan_ordered() if id(ws) not in in_window]
        return self._swap_search(chosen, outside, _budget_of(request))

    def _swap_search(
        self, current: list[WindowSlot], outside: list[WindowSlot], budget: float
    ) -> Extraction:
        """The swap loop, over key/cost arrays computed once per extraction."""
        key = self._key
        current_keys = [key(ws) for ws in current]
        current_costs = [ws.cost for ws in current]
        outside_keys = [key(ws) for ws in outside]
        outside_costs = [ws.cost for ws in outside]
        cost = sum(current_costs)
        out_range = range(len(outside))
        for _ in range(self._max_rounds):
            best_gain = 0.0
            best_swap: Optional[tuple[int, int]] = None
            for out_index in range(len(current)):
                out_cost = current_costs[out_index]
                out_key = current_keys[out_index]
                headroom = cost - out_cost
                for in_index in out_range:
                    if headroom + outside_costs[in_index] > budget:
                        continue
                    gain = out_key - outside_keys[in_index]
                    if gain > best_gain + 1e-12:
                        best_gain = gain
                        best_swap = (out_index, in_index)
            if best_swap is None:
                break
            out_index, in_index = best_swap
            cost += outside_costs[in_index] - current_costs[out_index]
            current[out_index], outside[in_index] = (
                outside[in_index],
                current[out_index],
            )
            current_keys[out_index], outside_keys[in_index] = (
                outside_keys[in_index],
                current_keys[out_index],
            )
            current_costs[out_index], outside_costs[in_index] = (
                outside_costs[in_index],
                current_costs[out_index],
            )
        return Extraction(value=sum(current_keys), slots=tuple(current))


class ExactAdditiveExtractor:
    """Branch-and-bound reference optimum for additive criteria.

    Exact counterpart of :class:`GreedyAdditiveExtractor`; exponential in
    the worst case, so intended for tests, validation and small candidate
    sets.  Pruning uses two admissible bounds: the sum of the smallest
    remaining keys (objective bound) and the sum of the smallest remaining
    costs (feasibility bound).
    """

    def __init__(self, key: Callable[[WindowSlot], float] = runtime_key):
        self._key = key

    def extract(
        self,
        window_start: float,
        candidates: Sequence[WindowSlot],
        request: ResourceRequest,
    ) -> Optional[Extraction]:
        """Best feasible ``n``-subset at this scan step (see class docs)."""
        n = request.node_count
        budget = _budget_of(request)
        items = sorted(candidates, key=self._key)
        m = len(items)
        if m < n:
            return None
        keys = [self._key(ws) for ws in items]
        costs = [ws.cost for ws in items]

        # suffix_min_costs[i][k]: sum of the k smallest costs among items[i:].
        suffix_sorted_costs: list[list[float]] = [[] for _ in range(m + 1)]
        for i in range(m - 1, -1, -1):
            merged = sorted(suffix_sorted_costs[i + 1] + [costs[i]])
            suffix_sorted_costs[i] = merged[:n]

        best_value = float("inf")
        best_subset: Optional[list[int]] = None

        def visit(index: int, taken: list[int], key_sum: float, cost_sum: float) -> None:
            """Depth-first branch-and-bound recursion."""
            nonlocal best_value, best_subset
            remaining = n - len(taken)
            if remaining == 0:
                if key_sum < best_value:
                    best_value = key_sum
                    best_subset = list(taken)
                return
            if m - index < remaining:
                return
            # Objective bound: keys are globally sorted ascending, so the
            # next `remaining` items are the cheapest possible completion.
            lower = key_sum + sum(keys[index : index + remaining])
            if lower >= best_value:
                return
            # Feasibility bound: cheapest possible completion cost.
            min_completion = sum(suffix_sorted_costs[index][:remaining])
            if cost_sum + min_completion > budget:
                return
            taken.append(index)
            visit(index + 1, taken, key_sum + keys[index], cost_sum + costs[index])
            taken.pop()
            visit(index + 1, taken, key_sum, cost_sum)

        visit(0, [], 0.0, 0.0)
        if best_subset is None:
            return None
        chosen = tuple(items[i] for i in best_subset)
        return Extraction(value=best_value, slots=chosen)
