"""The incremental extended-window kernel of the AEP scan.

The generic scan used to rebuild its bookkeeping at every step: the alive
candidates were re-filtered with a list comprehension per slot and the
criterion extractors re-sorted them from scratch at every extraction —
``O(m·C log C)`` over a scan of ``m`` slots with ``C`` alive candidates.
This module maintains the extended window *incrementally* instead, which
is what makes the scan actually linear in the number of slots:

* **Expiry-heap pruning** — on insertion each candidate's last viable
  window start (``slot.end - required_time``, capped by the deadline) is
  pushed onto a min-heap; pruning pops expired entries, so every
  candidate enters and leaves the structure exactly once over the whole
  scan instead of being re-examined at every step.
* **Cost-ordered insertion by bisection** — candidates live in a list
  sorted by ``(cost, required_time, serial)``.  The serial is the scan
  arrival order, so the order is byte-identical to the stable
  ``sorted(candidates, key=(cost, required_time))`` the extractors used
  to compute per step.  A second list ordered by
  ``(required_time, cost, serial)`` backs the exact-runtime sweep.
* **Running cheapest-``n`` sum** — maintained in O(1) per insert/expiry,
  it is the amortized-O(1) feasibility oracle: a window can exist at the
  current step iff the ``n`` cheapest alive candidates fit the budget.
  Because the running sum accumulates float rounding, it is only used to
  *reject* steps that are infeasible beyond any possible drift
  (:data:`ORACLE_SLACK`); near the boundary the sum is recomputed in the
  exact summation order of the pre-incremental code, so selection is
  byte-for-byte identical to the generic scan.
* **Cached legs** — :class:`LegFactory` computes the per-(node, request)
  task runtime and cost once and stamps them onto every slot of that
  node, replacing a :meth:`WindowSlot.for_request` recomputation per
  slot (and per AMP re-run inside CSA).

Equivalence with the pre-change generic scan is property-tested in
``tests/core/test_scan_equivalence.py`` against the frozen kernel in
:mod:`repro.core.reference`.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from heapq import heappop, heappush
from typing import Optional

from repro.model.job import ResourceRequest
from repro.model.slot import TIME_EPSILON, Slot
from repro.model.window import WindowSlot

#: Relative slack granted to the running cheapest-``n`` sum before it is
#: allowed to reject a step outright.  The incremental sum drifts from the
#: freshly computed one by at most a few ulps per update; this margin is
#: orders of magnitude above any reachable drift, so a fast rejection is
#: always a true rejection and anything closer falls through to the exact
#: recomputation.
ORACLE_SLACK = 1e-6


def _delete_keyed(
    entries: list[tuple[float, float, int]], key: tuple[float, float, int]
) -> int:
    """Delete exactly ``key`` from a sorted key list, returning its index.

    ``bisect_left`` alone may land on a *neighbouring* entry that merely
    compares equal to ``key`` — IEEE semantics make distinct float keys
    interchangeable under comparison (``-0.0 == 0.0``), so equal-comparing
    ``(cost, time)`` pairs from different candidates can sit side by
    side.  The serial (unique, final tuple component) identifies the one
    entry that belongs to the expiring candidate; it is verified before
    anything is deleted, and a miss raises instead of silently removing
    another candidate's entry.
    """
    serial = key[2]
    index = bisect_left(entries, key)
    end = len(entries)
    while index < end and entries[index][2] != serial:
        index += 1
    if index == end:
        raise LookupError(f"candidate entry {key!r} missing from sorted list")
    del entries[index]
    return index


class LegFactory:
    """Per-(node, request) cache of window-leg characteristics.

    A request's task runtime and cost on a node depend only on the node,
    never on the individual slot, so they are computed once per node and
    reused for every slot of that node — across all AMP re-runs of a CSA
    search when the factory is shared.
    """

    __slots__ = ("_request", "_cache")

    def __init__(self, request: ResourceRequest) -> None:
        self._request = request
        self._cache: dict[int, tuple[float, float]] = {}

    def leg(self, slot: Slot) -> WindowSlot:
        """The window leg for ``slot``, with cached runtime and cost."""
        node = slot.node
        cached = self._cache.get(node.node_id)
        if cached is None:
            duration = self._request.task_runtime_on(node)
            cached = (duration, node.usage_cost(duration))
            self._cache[node.node_id] = cached
        return WindowSlot(slot=slot, required_time=cached[0], cost=cached[1])


def leg_shape_key(request: ResourceRequest) -> tuple:
    """Grouping key under which :class:`LegFactory` caches are shareable.

    A leg's runtime is ``node.task_runtime(reservation_time,
    reference_performance)`` and its cost follows from the runtime alone,
    so factories built for requests agreeing on these two fields produce
    identical legs.  The batched scan layer
    (:mod:`repro.core.batchscan`) shares one factory per shape across
    the budget/deadline/count-varying requests of a cycle's fallback
    scans.
    """
    return (request.reservation_time, request.reference_performance)


class IncrementalCandidateSet:
    """The alive extended-window candidates, maintained across scan steps.

    Parameters
    ----------
    n:
        The request's ``node_count``; fixes the boundary of the running
        cheapest-``n`` sum.
    deadline:
        Optional latest window finish.  With a deadline, a candidate
        whose task can no longer finish in time is expired exactly like
        one whose slot ran out — window starts are non-decreasing, so
        deadline ineligibility is just another (possibly earlier) expiry.
    """

    __slots__ = (
        "_n",
        "_deadline",
        "_serial",
        "_legs",
        "_by_cost",
        "_by_time",
        "_expiry",
        "_cheap_sum",
        "inserted",
        "expired",
    )

    def __init__(self, n: int, deadline: Optional[float] = None) -> None:
        self._n = n
        self._deadline = deadline
        self._serial = 0
        #: serial -> leg, in scan (insertion) order — dicts preserve it.
        self._legs: dict[int, WindowSlot] = {}
        self._by_cost: list[tuple[float, float, int]] = []
        self._by_time: list[tuple[float, float, int]] = []
        self._expiry: list[tuple[float, int]] = []
        self._cheap_sum = 0.0
        #: Structural counters: every candidate increments each at most
        #: once over a whole scan, which is the linearity argument.
        self.inserted = 0
        self.expired = 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, leg: WindowSlot) -> None:
        """Add one alive candidate (called once per surviving slot)."""
        self._serial += 1
        serial = self._serial
        expire = leg.slot.end - leg.required_time
        if self._deadline is not None:
            deadline_expire = self._deadline - leg.required_time
            if deadline_expire < expire:
                expire = deadline_expire
        self._legs[serial] = leg
        index = bisect_left(self._by_cost, (leg.cost, leg.required_time, serial))
        self._by_cost.insert(index, (leg.cost, leg.required_time, serial))
        if index < self._n:
            self._cheap_sum += leg.cost
            if len(self._by_cost) > self._n:
                self._cheap_sum -= self._by_cost[self._n][0]
        insort(self._by_time, (leg.required_time, leg.cost, serial))
        heappush(self._expiry, (expire, serial))
        self.inserted += 1

    def prune(self, window_start: float) -> int:
        """Expire candidates that cannot host a window from here on.

        A candidate is alive while ``window_start <= expire + TIME_EPSILON``
        — the same tolerance the generic scan's ``fits_from`` and deadline
        checks apply.  Returns the number of candidates expired.
        """
        expired = 0
        heap = self._expiry
        while heap and heap[0][0] < window_start - TIME_EPSILON:
            _, serial = heappop(heap)
            leg = self._legs.pop(serial)
            key = (leg.cost, leg.required_time, serial)
            index = _delete_keyed(self._by_cost, key)
            if index < self._n:
                self._cheap_sum -= leg.cost
                if len(self._by_cost) >= self._n:
                    self._cheap_sum += self._by_cost[self._n - 1][0]
            time_key = (leg.required_time, leg.cost, serial)
            _delete_keyed(self._by_time, time_key)
            expired += 1
        if not self._by_cost:
            self._cheap_sum = 0.0  # hard reset: no drift survives emptiness
        self.expired += expired
        return expired

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._legs)

    @property
    def cheapest_sum(self) -> float:
        """The running cost sum of the ``n`` cheapest alive candidates.

        Maintained incrementally (O(1) per mutation); subject to float
        drift far below :data:`ORACLE_SLACK`.  Meaningful only when at
        least ``n`` candidates are alive.
        """
        return self._cheap_sum

    def feasible_cheapest(
        self, n: int, budget: float
    ) -> Optional[tuple[list[WindowSlot], float]]:
        """The ``n`` cheapest alive candidates iff they fit ``budget``.

        This is the feasibility oracle of the cheapest-subset criteria:
        the running sum rejects hopeless steps in O(1); otherwise the sum
        is recomputed in the exact order of the pre-incremental code and
        compared precisely, so the outcome is byte-identical to
        ``cheapest_subset`` on the sorted candidate list.  Returns the
        chosen legs and their exact cost sum, or ``None``.
        """
        if len(self._by_cost) < n:
            return None
        if budget != float("inf") and self._cheap_sum > budget + ORACLE_SLACK * (
            1.0 + abs(budget)
        ):
            return None
        total = 0.0
        for index in range(n):
            total += self._by_cost[index][0]
        if total > budget:
            return None
        legs = self._legs
        return [legs[entry[2]] for entry in self._by_cost[:n]], total

    def cheapest(self, n: int) -> list[WindowSlot]:
        """The ``n`` cheapest alive candidates, in cost order."""
        legs = self._legs
        return [legs[entry[2]] for entry in self._by_cost[:n]]

    def ordered(self) -> list[WindowSlot]:
        """All alive candidates ordered by ``(cost, required_time, arrival)``.

        Identical to the stable ``sorted(candidates, key=(cost,
        required_time))`` of the generic extractors.
        """
        legs = self._legs
        return [legs[entry[2]] for entry in self._by_cost]

    def ordered_by_time(self) -> list[WindowSlot]:
        """All alive candidates ordered by ``(required_time, cost, arrival)``."""
        legs = self._legs
        return [legs[entry[2]] for entry in self._by_time]

    def scan_ordered(self) -> list[WindowSlot]:
        """All alive candidates in scan (arrival) order.

        This is exactly the candidate list the generic scan passed to its
        extractors, so order-sensitive extractors (random selection,
        branch-and-bound tie-breaking) behave identically.
        """
        return list(self._legs.values())

    def eligible(
        self, n: int, window_start: float, deadline: Optional[float] = None
    ) -> list[WindowSlot]:
        """Up to ``n`` cheapest candidates able to finish by ``deadline``.

        The public replacement for reaching into the private cost order
        (the retired ``fastscan`` shim used to walk ``_CostOrdered._items``
        directly).  ``deadline=None`` falls back to the set's constructed
        deadline; when that is also ``None`` every alive candidate is
        eligible.
        """
        limit = deadline if deadline is not None else self._deadline
        legs = self._legs
        if limit is None:
            return [legs[entry[2]] for entry in self._by_cost[:n]]
        chosen: list[WindowSlot] = []
        for cost, required, serial in self._by_cost:
            if window_start + required > limit + TIME_EPSILON:
                continue
            chosen.append(legs[serial])
            if len(chosen) == n:
                break
        return chosen
