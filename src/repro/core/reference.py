"""Frozen pre-incremental scan kernel — the equivalence baseline.

This module preserves, verbatim, the generic AEP scan and the two
extractors whose inner loops were rewritten when the incremental
extended-window kernel (:mod:`repro.core.candidates`) became the main
path:

* :func:`reference_scan` — the original ``aep_scan``: per-slot
  list-comprehension pruning, per-step deadline filtering, and a fresh
  :meth:`WindowSlot.for_request` per slot;
* :class:`ReferenceMinRuntimeSubstitutionExtractor` — the substitution
  heuristic with a full ``sorted()`` per extraction;
* :class:`ReferenceGreedyAdditiveExtractor` — the swap search calling
  ``self._key`` inside the O(n·m) loop.

It exists for two jobs only: the old-vs-new equivalence property tests
(``tests/core/test_scan_equivalence.py``), which assert window-for-window
identical selection, and the ``repro bench-core`` baseline, which reports
the incremental kernel's speedup against these exact code paths.  Do not
"optimize" this module — its value is that it does not change.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Union

from repro.core.extractors import (
    Extraction,
    WindowExtractor,
    _budget_of,
    cheapest_subset,
)
from repro.model.job import Job, ResourceRequest
from repro.model.slot import TIME_EPSILON
from repro.model.window import Window, WindowSlot

#: Kept equal to :data:`repro.core.aep.VALUE_EPSILON`.
VALUE_EPSILON = 1e-12


def _request_of(job: Union[Job, ResourceRequest]) -> ResourceRequest:
    if isinstance(job, Job):
        return job.request
    return job


def reference_scan(
    job: Union[Job, ResourceRequest],
    slots: Iterable,
    extractor: WindowExtractor,
    *,
    stop_at_first: bool = False,
):
    """The pre-incremental ``aep_scan``, byte-for-byte (see module docs)."""
    from repro.core.aep import ScanResult

    request = _request_of(job)
    n = request.node_count
    deadline = request.deadline

    candidates: list[WindowSlot] = []
    best: Optional[ScanResult] = None
    best_value = float("inf")
    steps = 0
    slots_scanned = 0
    candidate_peak = 0
    previous_start = None

    for slot in slots:
        slots_scanned += 1
        if previous_start is not None and slot.start < previous_start - TIME_EPSILON:
            raise ValueError(
                "reference_scan requires slots ordered by non-decreasing start time"
            )
        previous_start = slot.start
        if not request.node_matches(slot.node):
            continue
        leg = WindowSlot.for_request(slot, request)
        window_start = slot.start
        candidates = [ws for ws in candidates if ws.fits_from(window_start)]
        if not leg.fits_from(window_start):
            continue
        if deadline is not None and window_start + leg.required_time > deadline + TIME_EPSILON:
            continue
        candidates.append(leg)
        candidate_peak = max(candidate_peak, len(candidates))
        if deadline is not None:
            eligible = [
                ws
                for ws in candidates
                if window_start + ws.required_time <= deadline + TIME_EPSILON
            ]
        else:
            eligible = candidates
        if len(eligible) < n:
            continue
        steps += 1
        extraction = extractor.extract(window_start, eligible, request)
        if extraction is None:
            continue
        if extraction.value < best_value - VALUE_EPSILON:
            best_value = extraction.value
            best = ScanResult(
                window=Window(start=window_start, slots=extraction.slots),
                value=extraction.value,
                steps=steps,
            )
            if stop_at_first:
                break
    if best is not None:
        return ScanResult(
            window=best.window,
            value=best.value,
            steps=steps,
            slots_scanned=slots_scanned,
            candidate_peak=candidate_peak,
        )
    return None


class ReferenceMinRuntimeSubstitutionExtractor:
    """The substitution heuristic as it stood before the rewrite."""

    def extract(
        self,
        window_start: float,
        candidates: Sequence[WindowSlot],
        request: ResourceRequest,
    ) -> Optional[Extraction]:
        """Best feasible ``n``-subset at this scan step (frozen)."""
        n = request.node_count
        budget = _budget_of(request)
        ordered = sorted(candidates, key=lambda ws: (ws.cost, ws.required_time))
        if len(ordered) < n:
            return None
        result = ordered[:n]
        cost = sum(ws.cost for ws in result)
        if cost > budget:
            return None
        for short in ordered[n:]:
            longest_index = max(
                range(len(result)), key=lambda i: result[i].required_time
            )
            longest = result[longest_index]
            if (
                short.required_time < longest.required_time
                and cost - longest.cost + short.cost <= budget
            ):
                cost += short.cost - longest.cost
                result[longest_index] = short
        return Extraction(
            value=max(ws.required_time for ws in result), slots=tuple(result)
        )


class ReferenceGreedyAdditiveExtractor:
    """The additive swap search as it stood before the rewrite."""

    def __init__(
        self,
        key: Callable[[WindowSlot], float] = lambda ws: ws.required_time,
        max_rounds: int = 64,
    ):
        self._key = key
        self._max_rounds = max(1, max_rounds)

    def extract(
        self,
        window_start: float,
        candidates: Sequence[WindowSlot],
        request: ResourceRequest,
    ) -> Optional[Extraction]:
        """Best feasible ``n``-subset at this scan step (frozen)."""
        n = request.node_count
        budget = _budget_of(request)
        chosen = cheapest_subset(candidates, n, budget)
        if chosen is None:
            return None
        current = list(chosen)
        in_window = set(map(id, current))
        outside = [ws for ws in candidates if id(ws) not in in_window]
        cost = sum(ws.cost for ws in current)
        for _ in range(self._max_rounds):
            best_gain = 0.0
            best_swap: Optional[tuple[int, int]] = None
            for out_index, out_ws in enumerate(current):
                for in_index, in_ws in enumerate(outside):
                    if cost - out_ws.cost + in_ws.cost > budget:
                        continue
                    gain = self._key(out_ws) - self._key(in_ws)
                    if gain > best_gain + 1e-12:
                        best_gain = gain
                        best_swap = (out_index, in_index)
            if best_swap is None:
                break
            out_index, in_index = best_swap
            cost += outside[in_index].cost - current[out_index].cost
            current[out_index], outside[in_index] = (
                outside[in_index],
                current[out_index],
            )
        return Extraction(
            value=sum(self._key(ws) for ws in current), slots=tuple(current)
        )
