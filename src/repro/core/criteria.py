"""Optimization criteria for co-allocation windows.

Section 2.1: "one can define a criterion crW on which the best matching
window alternative is chosen: this can be a criterion for a minimum cost, a
minimum execution runtime or, for example, a minimum energy consumption."

All criteria are *minimized*.  :class:`Criterion` doubles as the selection
key the CSA scheme applies to its list of alternatives and as the metric
key of the simulation harness.
"""

from __future__ import annotations

from enum import Enum

from repro.model.window import Window


class Criterion(Enum):
    """A window characteristic to minimize."""

    START_TIME = "start_time"
    FINISH_TIME = "finish_time"
    RUNTIME = "runtime"
    PROCESSOR_TIME = "processor_time"
    COST = "cost"
    ENERGY = "energy"
    IDLE_TIME = "idle_time"

    def evaluate(self, window: Window) -> float:
        """The criterion value of ``window`` (lower is better)."""
        if self is Criterion.START_TIME:
            return window.start
        if self is Criterion.FINISH_TIME:
            return window.finish
        if self is Criterion.RUNTIME:
            return window.runtime
        if self is Criterion.PROCESSOR_TIME:
            return window.processor_time
        if self is Criterion.COST:
            return window.total_cost
        if self is Criterion.ENERGY:
            return window.total_energy
        if self is Criterion.IDLE_TIME:
            return window.idle_time
        raise ValueError(f"unhandled criterion {self!r}")  # pragma: no cover

    @property
    def label(self) -> str:
        """Human-readable name used by tables and reports."""
        return {
            Criterion.START_TIME: "start time",
            Criterion.FINISH_TIME: "finish time",
            Criterion.RUNTIME: "runtime",
            Criterion.PROCESSOR_TIME: "processor time",
            Criterion.COST: "total cost",
            Criterion.ENERGY: "energy",
            Criterion.IDLE_TIME: "idle time",
        }[self]


def best_window(windows, criterion: Criterion) -> Window:
    """The window minimizing ``criterion`` (first wins ties).

    This is the CSA selection step: "only alternatives with the extreme
    value of the given criterion will be selected, so the optimization will
    take place at the selection process".
    """
    iterator = iter(windows)
    try:
        best = next(iterator)
    except StopIteration:
        raise ValueError("best_window() requires at least one window") from None
    best_value = criterion.evaluate(best)
    for window in iterator:
        value = criterion.evaluate(window)
        if value < best_value:
            best, best_value = window, value
    return best
