"""Fixed-start replacement search for window repair.

When a local job preempts a leg of a *committed* co-allocation window,
the cheapest recovery keeps the window's synchronous start time and swaps
only the revoked legs for substitutes — every surviving reservation, and
the job's position in the schedule, stay untouched.  The search here is
the AEP scan degenerated to a single step: the window start is no longer
a free variable, so the extended window is built once at the fixed start
and the cheapest eligible candidates are read straight out of
:meth:`~repro.core.candidates.IncrementalCandidateSet.eligible`.
"""

from __future__ import annotations

from typing import AbstractSet, Optional

from repro.core.candidates import IncrementalCandidateSet, LegFactory
from repro.model.job import ResourceRequest
from repro.model.slot import TIME_EPSILON
from repro.model.slotpool import SlotPool
from repro.model.window import COST_EPSILON, WindowSlot


def find_fixed_start_replacements(
    pool: SlotPool,
    request: ResourceRequest,
    start: float,
    count: int,
    exclude_nodes: AbstractSet[int],
    budget: float,
) -> Optional[list[WindowSlot]]:
    """The ``count`` cheapest substitute legs able to start at ``start``.

    Parameters
    ----------
    pool:
        The *current* free-slot pool (not a snapshot: repair runs under
        the broker lock, between cycles).
    request:
        The job's resource request; fixes per-node task runtimes, the
        hardware filter and the deadline.
    start:
        The committed window's start time.  Every replacement must host
        ``[start, start + required_time)`` — repairs never move a window.
    count:
        Number of revoked legs to replace.
    exclude_nodes:
        Node ids already carrying a leg of this window (surviving *and*
        revoked): the repaired window must keep its nodes distinct, and
        a just-revoked node has no free slot over the span anyway.
    budget:
        Remaining budget — the request's budget minus the surviving
        legs' cost.  The replacements' cost sum must fit it.

    Returns the chosen legs in cost order, or ``None`` when fewer than
    ``count`` eligible candidates exist or the cheapest ``count`` exceed
    the budget (cost order makes that the strongest certificate of
    infeasibility).  Per-node slots are disjoint, so at most one slot per
    node can contain the fixed span — node-distinctness of the result is
    structural, not filtered.
    """
    if count <= 0:
        return []
    factory = LegFactory(request)
    deadline = request.deadline
    candidates = IncrementalCandidateSet(count, deadline)
    for slot in pool:
        if slot.start > start + TIME_EPSILON:
            break  # start-ordered: no later slot can cover the fixed start
        if slot.node.node_id in exclude_nodes:
            continue
        if not request.node_matches(slot.node):
            continue
        leg = factory.leg(slot)
        if not leg.fits_from(start):
            continue
        candidates.insert(leg)
    candidates.prune(start)
    chosen = candidates.eligible(count, start, deadline)
    if len(chosen) < count:
        return None
    total = sum(leg.cost for leg in chosen)
    if total > budget * (1.0 + COST_EPSILON) + COST_EPSILON:
        return None
    return chosen
