"""The AEP scan — the paper's general slot-search scheme (Section 2.1).

The scan walks the list of available slots ordered by non-decreasing start
time exactly once.  It maintains the *extended window*: the set of
candidate slots that could still host a task if the window started at the
current position.  Whenever at least ``n`` candidates are alive, a
criterion-specific extractor picks the best feasible ``n``-subset, and the
best extraction over the whole scan wins.

Because the slot list is start-ordered and the scan never revisits earlier
slots, the number of extended-window updates is linear in the number of
slots ``m`` (each slot enters the extended window once and leaves at most
once); the per-step extraction works on the alive candidates, whose count
is bounded by the number of CPU nodes — hence the paper's "linear
complexity on the number of slots, quadratic on the number of nodes".

Since the incremental-kernel rewrite the bookkeeping matches that
linearity argument operation-for-operation: the extended window is an
:class:`~repro.core.candidates.IncrementalCandidateSet` (expiry-heap
pruning, cost-ordered bisection insertion, running cheapest-``n`` sum)
carried across steps, window legs are built through a per-scan
:class:`~repro.core.candidates.LegFactory` cache, and extractors that
implement ``extract_incremental`` consume the maintained orders directly
instead of re-sorting the candidates at every step.  The pre-change
kernel is preserved verbatim in :mod:`repro.core.reference`; property
tests assert window-for-window identical selection.

On top of that, :func:`aep_scan` first offers each scan to the columnar
kernel in :mod:`repro.core.vectorized`: when the slots come from a
:class:`~repro.model.SlotPool` (or an ordered slot list) and the
extractor is one of the stock strategies, eligibility masks and window
costs are evaluated on numpy arrays and the object loop is skipped
entirely.  ``REPRO_SCAN_KERNEL=object`` disables the dispatch;
``repro.core.vectorized.scan_counters`` records which kernel served
each scan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Union

from repro.core.candidates import IncrementalCandidateSet, LegFactory
from repro.core.extractors import WindowExtractor
from repro.core.vectorized import UNSUPPORTED, vectorized_scan
from repro.model.job import Job, ResourceRequest
from repro.model.slot import TIME_EPSILON, Slot
from repro.model.window import Window

#: Minimal improvement for a new extraction to replace the incumbent; ties
#: keep the earlier (earlier-starting) window, like the paper's strict
#: comparison in the pseudo code.
VALUE_EPSILON = 1e-12


@dataclass(frozen=True)
class ScanResult:
    """Outcome of an AEP scan, with structural complexity counters.

    The counters give a noise-free view of the paper's complexity claims:
    ``slots_scanned`` grows linearly with the slot list (each slot is
    visited exactly once), ``candidate_peak`` is bounded by the number of
    CPU nodes (at most one alive slot per node), and ``steps`` counts the
    per-step extractions whose cost depends on the alive-set size — hence
    "linear in slots, quadratic in nodes".

    ``candidate_inserts`` / ``candidate_expiries`` count the incremental
    kernel's structural mutations.  Each scanned slot inserts at most one
    candidate and every insert expires at most once, so
    ``inserts + expiries <= 2 * slots_scanned`` — the amortized-O(1)
    per-slot bookkeeping bound the regression tests pin down.  (With a
    deadline, candidates that can no longer finish in time are expired
    immediately, so ``candidate_peak`` counts only *eligible* candidates;
    the pre-incremental scan kept them alive and filtered per step.)
    """

    window: Window
    value: float
    steps: int  # number of extraction attempts
    slots_scanned: int = 0  # slots visited by the scan
    candidate_peak: int = 0  # largest extended-window size observed
    candidate_inserts: int = 0  # candidates entering the extended window
    candidate_expiries: int = 0  # candidates pruned by expiry


def request_of(job: Union[Job, ResourceRequest]) -> ResourceRequest:
    """Accept either a :class:`Job` or a bare :class:`ResourceRequest`."""
    if isinstance(job, Job):
        return job.request
    return job


def aep_scan(
    job: Union[Job, ResourceRequest],
    slots: Iterable[Slot],
    extractor: WindowExtractor,
    *,
    stop_at_first: bool = False,
    leg_factory: Optional[LegFactory] = None,
) -> Optional[ScanResult]:
    """Run the AEP scheme over ``slots`` with the given extractor.

    Parameters
    ----------
    job:
        The job (or bare request) whose window is being sought.
    slots:
        Available slots **ordered by non-decreasing start time** (the
        precondition of the linear scan; :class:`~repro.model.SlotPool`
        iteration provides it).
    extractor:
        Criterion-specific ``getBestWindow`` implementation.  Extractors
        exposing ``extract_incremental`` receive the maintained
        :class:`~repro.core.candidates.IncrementalCandidateSet`; others
        get the alive candidates materialized in scan order, exactly as
        the generic scan passed them.
    stop_at_first:
        Stop at the first successful extraction.  Correct only for
        criteria that cannot improve later in the scan — the window start
        time (AMP) being the canonical case.
    leg_factory:
        Optional shared per-(node, request) leg cache; callers that scan
        the same request repeatedly (CSA's AMP re-runs) pass one to avoid
        recomputing per-node runtimes and costs.

    Returns
    -------
    ScanResult or None
        The best window found, its criterion value and the number of
        extraction attempts; ``None`` when no feasible window exists.
    """
    request = request_of(job)
    vector = vectorized_scan(request, slots, extractor, stop_at_first=stop_at_first)
    if vector is not UNSUPPORTED:
        # The vector kernel replayed this extractor's decisions on the
        # columnar snapshot; its selection, value and counters are
        # byte-identical to the object loop below (see the equivalence
        # suite), so the object scan is skipped entirely.
        if vector is None:
            return None
        return ScanResult(
            window=vector.window,
            value=vector.value,
            steps=vector.steps,
            slots_scanned=vector.slots_scanned,
            candidate_peak=vector.candidate_peak,
            candidate_inserts=vector.candidate_inserts,
            candidate_expiries=vector.candidate_expiries,
        )
    n = request.node_count
    deadline = request.deadline
    legs = leg_factory if leg_factory is not None else LegFactory(request)
    candidates = IncrementalCandidateSet(n, deadline=deadline)
    extract_incremental = getattr(extractor, "extract_incremental", None)

    best: Optional[ScanResult] = None
    best_value = float("inf")
    steps = 0
    slots_scanned = 0
    candidate_peak = 0
    previous_start = None

    for slot in slots:
        slots_scanned += 1
        if previous_start is not None and slot.start < previous_start - TIME_EPSILON:
            raise ValueError(
                "aep_scan requires slots ordered by non-decreasing start time"
            )
        previous_start = slot.start
        if not request.node_matches(slot.node):
            continue  # properHardwareAndSoftware filter
        leg = legs.leg(slot)
        window_start = slot.start
        # Expire candidates that can no longer host their task from here
        # on (each candidate is examined exactly once, when it expires).
        candidates.prune(window_start)
        if not leg.fits_from(window_start):
            continue  # the slot itself is too short for its node's task
        if deadline is not None and window_start + leg.required_time > deadline + TIME_EPSILON:
            # This leg can never meet the deadline, and later window starts
            # only make it worse; skip it (but keep scanning: other nodes
            # may be faster).
            continue
        candidates.insert(leg)
        if len(candidates) > candidate_peak:
            candidate_peak = len(candidates)
        if len(candidates) < n:
            continue
        steps += 1
        if extract_incremental is not None:
            extraction = extract_incremental(window_start, candidates, request)
        else:
            extraction = extractor.extract(
                window_start, candidates.scan_ordered(), request
            )
        if extraction is None:
            continue
        if extraction.value < best_value - VALUE_EPSILON:
            best_value = extraction.value
            best = ScanResult(
                window=Window(start=window_start, slots=extraction.slots),
                value=extraction.value,
                steps=steps,
            )
            if stop_at_first:
                break
    if best is not None:
        return ScanResult(
            window=best.window,
            value=best.value,
            steps=steps,
            slots_scanned=slots_scanned,
            candidate_peak=candidate_peak,
            candidate_inserts=candidates.inserted,
            candidate_expiries=candidates.expired,
        )
    return None
