"""Virtual-organization batch scheduling: the full two-phase scheme.

The paper evaluates its slot-selection algorithms in isolation, but they
are designed as phase one of the VO scheduling scheme of its reference
[6]: per cycle, (1) search alternative windows for every batch job in
priority order, (2) choose one alternative per job under the VO policy,
then commit.  This example drives that whole pipeline over several cycles
on a single persistent environment, with user jobs of different shapes
and priorities arriving each cycle.

Run:  python examples/batch_scheduling.py
"""

import numpy as np

from repro import (
    BatchScheduler,
    CSA,
    Criterion,
    EnvironmentConfig,
    EnvironmentGenerator,
    Job,
    JobBatch,
    ResourceRequest,
)


def arriving_batch(cycle: int, rng: np.random.Generator) -> JobBatch:
    """A small batch of user jobs with varying shapes and priorities."""
    batch = JobBatch()
    for index in range(int(rng.integers(3, 6))):
        tasks = int(rng.integers(2, 6))
        nominal = float(rng.choice([60.0, 100.0, 150.0]))
        # Budget proportional to the demanded work, with user-specific slack.
        budget = tasks * nominal * float(rng.uniform(1.6, 2.4))
        batch.add(
            Job(
                f"c{cycle}-job{index}",
                ResourceRequest(
                    node_count=tasks, reservation_time=nominal, budget=budget
                ),
                priority=int(rng.integers(0, 10)),
                owner=f"user-{index % 3}",
            )
        )
    return batch


def main() -> None:
    rng = np.random.default_rng(7)
    environment = EnvironmentGenerator(
        EnvironmentConfig(node_count=60, seed=7)
    ).generate()
    scheduler = BatchScheduler(
        search=CSA(max_alternatives=15),
        criterion=Criterion.FINISH_TIME,  # VO policy: finish jobs early
        vo_budget=None,
    )

    print(
        f"environment: 60 nodes, initial load {environment.utilization():.0%}, "
        f"free time {environment.slot_pool().total_free_time():.0f}"
    )
    for cycle in range(4):
        batch = arriving_batch(cycle, rng)
        report = scheduler.run_cycle(batch, environment)
        summary = report.summary()
        print(
            f"\ncycle {cycle}: {len(batch)} jobs submitted, "
            f"{summary['scheduled_jobs']:.0f} scheduled, "
            f"{summary['unscheduled_jobs']:.0f} deferred "
            f"(alternatives searched: {summary['alternatives_total']:.0f})"
        )
        for job in batch:
            window = report.scheduled.get(job.job_id)
            if window is None:
                print(f"  {job.job_id:<12} prio {job.priority}  -> deferred")
            else:
                print(
                    f"  {job.job_id:<12} prio {job.priority}  -> "
                    f"start {window.start:6.1f}, finish {window.finish:6.1f}, "
                    f"cost {window.total_cost:7.1f} "
                    f"(budget {job.request.effective_budget:7.1f})"
                )
        print(
            f"  cycle cost {summary['total_cost']:.1f}, "
            f"makespan {summary['makespan']:.1f}, "
            f"residual free time {environment.slot_pool().total_free_time():.0f}"
        )

    print(
        "\nDeferred jobs would re-enter the next cycle's batch in a real VO; "
        "capacity shrinks cycle over cycle as committed windows occupy the "
        "node timelines."
    )


if __name__ == "__main__":
    main()
