"""Compare VO scheduling policies over a sustained job flow.

The paper's algorithms feed phase one of the VO scheduling scheme; the
*policy* question — which criterion should phase two optimize? — only
shows up over many cycles of arriving, deferring and ageing jobs.  This
example runs the same seeded job flow under three VO policies and
contrasts throughput, money spent and waiting time.

Run:  python examples/job_flow_policies.py
"""

from repro.core import CSA, Criterion
from repro.environment import EnvironmentConfig
from repro.scheduling import BatchScheduler, FlowConfig, JobFlowSimulation, UpdateModel
from repro.simulation import JobGenerator

POLICIES = (
    ("earliest finish", Criterion.FINISH_TIME),
    ("cheapest", Criterion.COST),
    ("least CPU time", Criterion.PROCESSOR_TIME),
)


def run_policy(criterion: Criterion):
    config = FlowConfig(
        cycles=8,
        arrivals_per_cycle=5,
        max_deferrals=2,
        environment=EnvironmentConfig(node_count=40),
        updates=UpdateModel(local_job_rate=0.3),
        seed=2024,  # identical flow for every policy
    )
    scheduler = BatchScheduler(
        search=CSA(max_alternatives=12), criterion=criterion
    )
    simulation = JobFlowSimulation(
        config, scheduler=scheduler, job_generator=JobGenerator(seed=2024)
    )
    return simulation.run()


def main() -> None:
    print(
        "8 cycles x 5 arriving jobs on 40 nodes, identical seeded workload, "
        "three VO policies:\n"
    )
    header = (
        f"{'policy':<16} {'scheduled':>9} {'dropped':>8} {'throughput':>11} "
        f"{'mean cost':>10} {'mean wait':>10}"
    )
    print(header)
    print("-" * len(header))
    results = {}
    for label, criterion in POLICIES:
        result = run_policy(criterion)
        results[label] = result
        print(
            f"{label:<16} {result.scheduled_total:>9} {result.dropped_total:>8} "
            f"{result.throughput:>11.2f} {result.cost.mean:>10.1f} "
            f"{result.waiting_cycles.mean:>10.2f}"
        )

    cheap = results["cheapest"].cost.mean
    fast = results["earliest finish"].cost.mean
    print(
        f"\nThe cheapest policy saves "
        f"{(fast - cheap) / fast:.0%} per job against the earliest-finish "
        "policy on the same workload — the VO-level counterpart of the "
        "paper's Fig. 4 spread."
    )


if __name__ == "__main__":
    main()
