"""Reproduce the paper's Figs. 2-4 comparison at configurable scale.

Runs N independent scheduling cycles of the Section 3.1 base experiment
(a fresh 100-node environment per cycle, one predefined 5x150 job with a
1500 budget) and prints, for each reported criterion, the measured means
side by side with the paper's published values.

Each cycle draws from its own spawned RNG stream (the config default),
so the cycles fan out over worker processes and the aggregates are
bit-identical for every worker count — pass 0 workers for the
no-subprocess in-process mode.

Run:  python examples/algorithm_comparison.py [cycles] [workers]
      (default 200 cycles in-process; the paper used 5000 — pass
      "5000 8" for a full run on 8 cores)
"""

import sys
import time

from repro.analysis import comparison_table
from repro.analysis.paper_reference import CSA_BASE_ALTERNATIVES, FIGURE_REFERENCES
from repro.core import Criterion
from repro.simulation import paper_base_config, run_comparison

FIGURES = (
    ("Fig. 2(a) average start time", Criterion.START_TIME),
    ("Fig. 2(b) average runtime", Criterion.RUNTIME),
    ("Fig. 3(a) average finish time", Criterion.FINISH_TIME),
    ("Fig. 3(b) average CPU usage time", Criterion.PROCESSOR_TIME),
    ("Fig. 4    average execution cost", Criterion.COST),
)


def main() -> None:
    cycles = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else 0
    config = paper_base_config(cycles=cycles, seed=2013)
    print(
        f"running {cycles} scheduling cycles of the base experiment "
        f"({config.stream_mode} streams, "
        f"{workers or 'in-process'} worker(s)) ..."
    )
    began = time.perf_counter()
    result = run_comparison(config, workers=workers or None)
    elapsed = time.perf_counter() - began

    print(
        f"\n{result.cycles_run} cycles in {elapsed:.1f}s wall "
        f"({result.cycles_run / elapsed:.1f} cycles/s)\n"
        f"slots per cycle: {result.slot_count.mean:.1f} (paper: 472.6)   "
        f"CSA alternatives per cycle: {result.csa.alternatives.mean:.1f} "
        f"(paper: {CSA_BASE_ALTERNATIVES:.0f})"
    )
    for title, criterion in FIGURES:
        means = {
            name: stats.mean(criterion)
            for name, stats in result.algorithms.items()
        }
        means["CSA"] = result.csa_mean_of(criterion)
        print()
        print(comparison_table(means, FIGURE_REFERENCES[criterion], title=title))

    print(
        "\nNote: absolute values depend on the calibrated market-pricing "
        "parameters (see repro/environment/pricing.py); the orderings and "
        "ratios are the reproduced result."
    )


if __name__ == "__main__":
    main()
