"""Regenerate the paper's figures as SVG images.

Runs the base comparison plus abbreviated Table 1/2 sweeps and writes one
SVG per figure into ``figures/``: bar charts for Figs. 2-4 (with the
paper's published values as dashed reference markers) and line charts for
the Figs. 5-6 scaling curves.

Run:  python examples/render_figures.py [cycles] [workers]    (default 100, in-process)
"""

import os
import sys

from repro.analysis.paper_reference import FIGURE_REFERENCES
from repro.analysis.svgplot import bar_chart, line_chart, save_svg
from repro.core import Criterion
from repro.simulation import (
    paper_base_config,
    run_comparison,
    sweep_interval_lengths,
    sweep_node_counts,
)

FIGURES = (
    ("fig2a_start_time", "Fig. 2(a) average start time", Criterion.START_TIME),
    ("fig2b_runtime", "Fig. 2(b) average runtime", Criterion.RUNTIME),
    ("fig3a_finish_time", "Fig. 3(a) average finish time", Criterion.FINISH_TIME),
    ("fig3b_proc_time", "Fig. 3(b) average CPU usage", Criterion.PROCESSOR_TIME),
    ("fig4_cost", "Fig. 4 average execution cost", Criterion.COST),
)

CURVE_ALGORITHMS = ("AMP", "MinRunTime", "MinFinish", "MinProcTime", "MinCost")


def main() -> None:
    cycles = int(sys.argv[1]) if len(sys.argv) > 1 else 100
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else 0
    out_dir = os.path.join(os.path.dirname(__file__), "..", "figures")
    os.makedirs(out_dir, exist_ok=True)

    config = paper_base_config(cycles=cycles, seed=2013)
    print(f"running {cycles} comparison cycles ...")
    result = run_comparison(config, workers=workers or None)
    for stem, title, criterion in FIGURES:
        means = result.all_means(criterion)
        path = os.path.join(out_dir, f"{stem}.svg")
        save_svg(
            bar_chart(
                title,
                {name: round(value, 1) for name, value in means.items()},
                y_label=criterion.label,
                reference=FIGURE_REFERENCES[criterion],
            ),
            path,
        )
        print(f"wrote {path}")

    print("running the scaling sweeps ...")
    node_study = sweep_node_counts(config, (50, 100, 200), repetitions=5)
    interval_study = sweep_interval_lengths(
        config, (600.0, 1200.0, 2400.0), repetitions=5
    )
    save_svg(
        line_chart(
            "Fig. 5 working time vs CPU nodes",
            {name: node_study.series_ms(name) for name in CURVE_ALGORITHMS},
            x_label="CPU nodes",
            y_label="ms (log)",
            log_y=True,
        ),
        os.path.join(out_dir, "fig5_nodes_scaling.svg"),
    )
    save_svg(
        line_chart(
            "Fig. 6 working time vs interval length",
            {name: interval_study.series_ms(name) for name in CURVE_ALGORITHMS},
            x_label="scheduling interval length",
            y_label="ms (log)",
            log_y=True,
        ),
        os.path.join(out_dir, "fig6_interval_scaling.svg"),
    )
    print(f"wrote {out_dir}/fig5_nodes_scaling.svg")
    print(f"wrote {out_dir}/fig6_interval_scaling.svg")


if __name__ == "__main__":
    main()
