"""Quickstart: select co-allocation windows in a heterogeneous environment.

Generates the paper's base environment (100 non-dedicated CPU nodes with
market pricing on the scheduling interval [0, 600]), submits one parallel
job (5 tasks x 150 nominal time units, budget 1500), and shows what each
slot-selection algorithm picks.

Run:  python examples/quickstart.py
"""

from repro import (
    AMP,
    CSA,
    Criterion,
    EnvironmentConfig,
    EnvironmentGenerator,
    Job,
    MinCost,
    MinFinish,
    MinProcTime,
    MinRunTime,
    ResourceRequest,
)


def main() -> None:
    # 1. A fresh distributed environment (deterministic via the seed).
    config = EnvironmentConfig(node_count=100, seed=42)
    environment = EnvironmentGenerator(config).generate()
    pool = environment.slot_pool()
    print(
        f"environment: {config.node_count} nodes, "
        f"{len(pool)} free slots on [0, {config.interval_end:.0f}), "
        f"initial load {environment.utilization():.0%}"
    )

    # 2. The job: 5 synchronous tasks, 150 time units at reference speed,
    #    total budget 1500 (the paper's base resource request).
    job = Job(
        "quickstart",
        ResourceRequest(node_count=5, reservation_time=150.0, budget=1500.0),
    )

    # 3. One window per algorithm — same pool, different criteria.
    print(f"\n{'algorithm':<14} {'start':>7} {'runtime':>8} {'finish':>8} "
          f"{'CPU time':>9} {'cost':>8}  nodes")
    for algorithm in (AMP(), MinFinish(), MinRunTime(), MinCost(), MinProcTime()):
        window = algorithm.select(job, pool)
        if window is None:
            print(f"{algorithm.name:<14} no feasible window")
            continue
        print(
            f"{algorithm.name:<14} {window.start:>7.1f} {window.runtime:>8.1f} "
            f"{window.finish:>8.1f} {window.processor_time:>9.1f} "
            f"{window.total_cost:>8.1f}  {window.nodes()}"
        )

    # 4. CSA: collect *all* disjoint alternatives, then pick per criterion.
    csa = CSA()
    alternatives = csa.find_alternatives(job, pool)
    print(f"\nCSA found {len(alternatives)} disjoint alternatives; extremes:")
    for criterion in (Criterion.FINISH_TIME, Criterion.COST, Criterion.RUNTIME):
        best = min(alternatives, key=criterion.evaluate)
        print(
            f"  best by {criterion.label:<15}: "
            f"{criterion.evaluate(best):8.1f} (start {best.start:.1f}, "
            f"cost {best.total_cost:.1f})"
        )

    # 5. Commit one window: the environment's timelines absorb it, so the
    #    next scheduling cycle sees only the residual free time.
    chosen = MinFinish().select(job, pool)
    environment.commit_window(chosen)
    print(
        f"\ncommitted the MinFinish window; free time "
        f"{pool.total_free_time():.0f} -> "
        f"{environment.slot_pool().total_free_time():.0f}"
    )


if __name__ == "__main__":
    main()
