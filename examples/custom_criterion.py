"""Extending AEP with a custom optimization criterion.

The AEP scheme is generic: any function that extracts the best feasible
``n``-subset from the extended window plugs into the same linear scan.
This example defines a *load-balance* criterion — prefer windows whose
task durations are as uniform as possible (a small "rough right edge"),
so that no node idles while the slowest task finishes — and runs it
through :func:`repro.aep_scan` next to the built-in criteria.

It also shows the shortcut for additive criteria: reusing
``GreedyAdditiveExtractor`` with a custom per-slot key (here: a
data-staging cost proportional to the node's disk).

(The balanced-edge idea proved useful enough that the library ships it as
``repro.MinIdle`` with the ``Criterion.IDLE_TIME`` metric; this example
keeps the from-scratch version as the extension tutorial.)

Run:  python examples/custom_criterion.py
"""

from repro import (
    EnvironmentConfig,
    EnvironmentGenerator,
    Job,
    MinRunTime,
    ResourceRequest,
    aep_scan,
)
from repro.core.extractors import Extraction, GreedyAdditiveExtractor, cheapest_subset
from repro.model.window import COST_EPSILON


class BalancedEdgeExtractor:
    """Minimize the spread between the longest and shortest task.

    Strategy: sort candidates by required time and slide a window of ``n``
    consecutive durations — consecutive-in-duration subsets have the
    smallest spread — keeping the cheapest feasible one.
    """

    def extract(self, window_start, candidates, request):
        n = request.node_count
        budget = request.effective_budget
        if budget != float("inf"):
            budget += COST_EPSILON * (1.0 + abs(budget))
        if len(candidates) < n:
            return None
        by_time = sorted(candidates, key=lambda ws: ws.required_time)
        best = None
        for offset in range(len(by_time) - n + 1):
            group = by_time[offset : offset + n]
            if sum(ws.cost for ws in group) > budget:
                continue
            spread = group[-1].required_time - group[0].required_time
            if best is None or spread < best.value:
                best = Extraction(value=spread, slots=tuple(group))
        return best


def main() -> None:
    environment = EnvironmentGenerator(
        EnvironmentConfig(node_count=100, seed=23)
    ).generate()
    pool = environment.slot_pool()
    job = Job(
        "custom", ResourceRequest(node_count=5, reservation_time=150.0, budget=1500.0)
    )

    print("built-in MinRunTime vs a custom balanced-edge criterion:\n")
    runtime_window = MinRunTime().select(job, pool)
    balanced = aep_scan(job, pool, BalancedEdgeExtractor())
    for label, window in (
        ("MinRunTime", runtime_window),
        ("BalancedEdge", balanced.window if balanced else None),
    ):
        durations = sorted(ws.required_time for ws in window.slots)
        spread = durations[-1] - durations[0]
        idle = sum(durations[-1] - d for d in durations)
        print(
            f"  {label:<13} runtime {window.runtime:5.1f}, edge spread {spread:5.1f}, "
            f"idle node-time {idle:6.1f}, cost {window.total_cost:7.1f}"
        )
    print(
        "\n  -> the balanced window wastes far less co-allocated node time\n"
        "     waiting for its slowest task (at some cost in raw runtime)."
    )

    # Additive custom criteria need no new extractor at all:
    staging = GreedyAdditiveExtractor(
        key=lambda ws: 0.5 * ws.slot.node.spec.disk / ws.slot.node.performance
    )
    result = aep_scan(job, pool, staging)
    print(
        f"\nadditive data-staging criterion via GreedyAdditiveExtractor: "
        f"value {result.value:.1f}, window cost {result.window.total_cost:.1f}"
    )
    result.window.validate(job.request)
    print("window validated against the request: OK")


if __name__ == "__main__":
    main()
