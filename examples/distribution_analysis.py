"""Beyond means: the distributions behind the paper's Fig. 2-4 averages.

The paper reports averages over 5000 cycles; this example collects the
raw per-cycle values for a few criterion/algorithm pairs and shows their
distributions as text histograms — e.g. MinFinish's finish time is tight
while MinCost's start time is close to uniform over the interval (it goes
wherever the cheap slots are).

Run:  python examples/distribution_analysis.py [cycles]    (default 120)
"""

import sys

from repro import Criterion, MinCost, MinFinish, MinRunTime
from repro.analysis import histogram
from repro.simulation import paper_base_config
from repro.simulation.experiment import make_generator


def main() -> None:
    cycles = int(sys.argv[1]) if len(sys.argv) > 1 else 120
    config = paper_base_config(cycles=cycles, seed=31)
    generator = make_generator(config)
    job = config.base_job()

    algorithms = {
        "MinFinish": MinFinish(),
        "MinRunTime": MinRunTime(),
        "MinCost": MinCost(),
    }
    samples = {name: {"finish": [], "cost": [], "start": []} for name in algorithms}

    print(f"collecting {cycles} cycles ...")
    for _ in range(cycles):
        pool = generator.generate().slot_pool()
        for name, algorithm in algorithms.items():
            window = algorithm.select(job, pool)
            if window is None:
                continue
            samples[name]["finish"].append(window.finish)
            samples[name]["cost"].append(window.total_cost)
            samples[name]["start"].append(window.start)

    print()
    print(histogram(
        samples["MinFinish"]["finish"], bins=10,
        title="MinFinish finish time (tight: the whole point of the criterion)",
    ))
    print()
    print(histogram(
        samples["MinCost"]["start"], bins=10,
        title="MinCost start time (spread: it chases cheap slots anywhere)",
    ))
    print()
    print(histogram(
        samples["MinCost"]["cost"], bins=10,
        title="MinCost total cost (well under the 1500 budget)",
    ))
    print()
    print(histogram(
        samples["MinRunTime"]["cost"], bins=10,
        title="MinRunTime total cost (pinned to the budget ceiling)",
    ))


if __name__ == "__main__":
    main()
