"""Multi-criteria selection over CSA's alternatives.

Section 2.1: users and VO administrators combine criteria to form search
strategies.  CSA hands back dozens of slot-disjoint alternatives per job;
this example shows the combinators of :mod:`repro.core.composite` at work
on that set:

* the Pareto front over (finish time, cost) — the real decision surface;
* weighted scalarization at several cost/speed preference mixes;
* lexicographic choice ("cheapest, ties by finish") with a tolerance;
* epsilon-constraint queries ("earliest finish under 1200").

Run:  python examples/pareto_tradeoffs.py
"""

from repro import (
    CSA,
    Criterion,
    EnvironmentConfig,
    EnvironmentGenerator,
    Job,
    ResourceRequest,
)
from repro.core import (
    constrained_best,
    lexicographic_choice,
    pareto_front,
    weighted_choice,
)


def describe(window) -> str:
    return (
        f"finish {window.finish:6.1f}, cost {window.total_cost:7.1f}, "
        f"runtime {window.runtime:5.1f}, start {window.start:6.1f}"
    )


def main() -> None:
    environment = EnvironmentGenerator(
        EnvironmentConfig(node_count=100, seed=3)
    ).generate()
    pool = environment.slot_pool()
    job = Job(
        "pareto", ResourceRequest(node_count=5, reservation_time=150.0, budget=1500.0)
    )

    alternatives = CSA().find_alternatives(job, pool)
    print(f"CSA collected {len(alternatives)} slot-disjoint alternatives\n")

    criteria = [Criterion.FINISH_TIME, Criterion.COST]
    front = pareto_front(alternatives, criteria)
    front.sort(key=Criterion.FINISH_TIME.evaluate)
    print(f"Pareto front over (finish time, cost): {len(front)} alternatives")
    for window in front:
        print(f"  {describe(window)}")

    print("\nweighted scalarization (finish vs cost):")
    for finish_weight in (1.0, 0.5, 0.0):
        chosen = weighted_choice(
            alternatives,
            {
                Criterion.FINISH_TIME: finish_weight,
                Criterion.COST: 1.0 - finish_weight + 1e-9,
            },
        )
        print(f"  finish weight {finish_weight:3.1f} -> {describe(chosen)}")

    print("\nlexicographic: cheapest first, 5% tolerance, then earliest finish:")
    chosen = lexicographic_choice(
        alternatives, [Criterion.COST, Criterion.FINISH_TIME], tolerance=0.05
    )
    print(f"  {describe(chosen)}")

    print("\nepsilon-constraint: earliest finish with cost <= 1300:")
    constrained = constrained_best(
        alternatives, Criterion.FINISH_TIME, {Criterion.COST: 1300.0}
    )
    if constrained is None:
        print("  no alternative meets the cost limit")
    else:
        print(f"  {describe(constrained)}")

    # Every composite pick is on (or dominated only by) the front.
    assert all(
        any(chosen is w for w in alternatives)
        for chosen in (chosen,)
    )


if __name__ == "__main__":
    main()
