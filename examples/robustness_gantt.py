"""Visualize co-allocations and replay them under disturbances.

Draws the paper's Fig. 1 ("window with a rough right edge") for real
selected windows as ASCII Gantt charts, then replays the schedule on
truly non-dedicated resources — local jobs keep arriving and preempt the
reservations — and reports how much of each criterion's planned advantage
survives.

Run:  python examples/robustness_gantt.py
"""

import numpy as np

from repro import (
    CSA,
    Criterion,
    EnvironmentConfig,
    EnvironmentGenerator,
    Job,
    JobBatch,
    MinCost,
    MinRunTime,
    PoissonDisturbances,
    ResourceRequest,
    replay_execution,
)
from repro.analysis import render_gantt, render_window
from repro.scheduling import BatchScheduler


def main() -> None:
    environment = EnvironmentGenerator(
        EnvironmentConfig(node_count=24, seed=19)
    ).generate()
    pool = environment.slot_pool()
    job = Job(
        "demo", ResourceRequest(node_count=5, reservation_time=150.0, budget=1500.0)
    )

    print("the rough right edge (paper Fig. 1) of two selected windows:\n")
    for algorithm in (MinRunTime(), MinCost()):
        window = algorithm.select(job, pool)
        print(f"[{algorithm.name}]")
        print(render_window(window))
        print()

    # A small batch scheduled by the two-phase scheme, drawn on the nodes.
    batch = JobBatch()
    for index, (tasks, nominal) in enumerate(((3, 100.0), (2, 150.0), (4, 60.0))):
        batch.add(
            Job(
                f"job-{index}",
                ResourceRequest(
                    node_count=tasks,
                    reservation_time=nominal,
                    budget=tasks * nominal * 2.2,
                ),
                priority=3 - index,
            )
        )
    scheduler = BatchScheduler(search=CSA(max_alternatives=10),
                               criterion=Criterion.FINISH_TIME)
    report = scheduler.run_cycle(batch, environment)
    print(
        f"batch of {len(batch)} jobs: {report.choice.scheduled_count} scheduled, "
        f"makespan {report.choice.makespan():.1f}\n"
    )
    print(render_gantt(environment, list(report.scheduled.values()), width=66))

    # Replay the committed schedule under local-job disturbances.
    print("\nreplaying under Poisson local-job arrivals (non-dedicated nodes):")
    model = PoissonDisturbances(rate=0.004, length_range=(10.0, 40.0))
    replay = replay_execution(report.scheduled, model, np.random.default_rng(5))
    for job_id, outcome in sorted(replay.jobs.items()):
        print(
            f"  {job_id:<8} planned finish {outcome.planned_finish:7.1f} -> "
            f"actual {outcome.actual_finish:7.1f} "
            f"(delay {outcome.delay:5.1f}, {outcome.preemption_count} preemptions)"
        )
    print(
        f"  mean slowdown {replay.mean_slowdown:.2f}, "
        f"{replay.disturbed_fraction:.0%} of jobs disturbed"
    )


if __name__ == "__main__":
    main()
