"""User-side request strategies: budgets, deadlines, hardware, energy.

Section 2.1: "By combining the optimization criteria, VO administrators
and users can form alternatives search strategies for every job in the
batch."  This example shows how the resource-request fields shape what
the same algorithms return on the same environment:

* a tight vs generous budget trades runtime against cost;
* a deadline prunes slow nodes out of the search;
* hardware constraints (minimum performance, price cap, OS) restrict the
  eligible node set;
* the MinEnergy criterion picks mid-range nodes (slow nodes run too long,
  fast nodes draw too much power).

Run:  python examples/user_strategies.py
"""

from repro import (
    EnvironmentConfig,
    EnvironmentGenerator,
    Job,
    MinCost,
    MinEnergy,
    MinFinish,
    MinRunTime,
    ResourceRequest,
)


def describe(label: str, window) -> None:
    if window is None:
        print(f"  {label:<34} -> no feasible window")
        return
    perfs = [ws.slot.node.performance for ws in window.slots]
    print(
        f"  {label:<34} -> start {window.start:6.1f}, finish {window.finish:6.1f}, "
        f"cost {window.total_cost:7.1f}, energy {window.total_energy:6.1f}, "
        f"node perfs {sorted(perfs)}"
    )


def main() -> None:
    environment = EnvironmentGenerator(
        EnvironmentConfig(node_count=100, seed=11)
    ).generate()
    pool = environment.slot_pool()

    base = dict(node_count=5, reservation_time=150.0)

    print("budget strategies (MinRunTime under different budgets):")
    for budget in (1100.0, 1500.0, 2500.0):
        job = Job(f"budget-{budget:.0f}", ResourceRequest(budget=budget, **base))
        describe(f"budget {budget:>6.0f}", MinRunTime().select(job, pool))
    print("  -> a larger budget buys faster (more expensive) nodes.")

    print("\ndeadline strategies (MinCost under different deadlines):")
    for deadline in (None, 300.0, 80.0):
        job = Job(
            f"deadline-{deadline}",
            ResourceRequest(budget=1500.0, deadline=deadline, **base),
        )
        label = f"deadline {deadline if deadline is not None else 'none':>6}"
        describe(label, MinCost().select(job, pool))
    print("  -> deadlines force MinCost off the cheapest (slowest) nodes.")

    print("\nhardware constraints (MinFinish):")
    describe(
        "no constraints",
        MinFinish().select(Job("free", ResourceRequest(budget=1500.0, **base)), pool),
    )
    describe(
        "min performance 6",
        MinFinish().select(
            Job(
                "perf6",
                ResourceRequest(budget=1500.0, min_performance=6.0, **base),
            ),
            pool,
        ),
    )
    describe(
        "price cap F=10 per time unit",
        MinFinish().select(
            Job(
                "cap",
                ResourceRequest(budget=1500.0, max_price_per_unit=10.0, **base),
            ),
            pool,
        ),
    )
    print("  -> constraints shrink the eligible slot set; windows shift or vanish.")

    print("\ncriterion strategies on the same request:")
    job = Job("criteria", ResourceRequest(budget=1500.0, **base))
    describe("MinCost   (cheapest)", MinCost().select(job, pool))
    describe("MinRunTime (fastest)", MinRunTime().select(job, pool))
    describe("MinEnergy (greenest)", MinEnergy().select(job, pool))
    print(
        "  -> energy favours mid-range performance: slow nodes run too long,\n"
        "     fast nodes draw too much power."
    )


if __name__ == "__main__":
    main()
