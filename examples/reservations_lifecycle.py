"""Advance reservations: book, rebook and cancel co-allocations.

The grid model behind the paper co-allocates via *advance reservations* —
a selected window is booked against the node timelines and can later be
withdrawn or swapped.  This example walks the full lifecycle with the
:class:`~repro.scheduling.ReservationLedger`:

1. select and book an earliest-start window;
2. a better (cheaper) offer appears — atomically rebook;
3. another user tries to book overlapping resources — rejected cleanly;
4. cancel and verify the capacity returns to the published slots.

Run:  python examples/reservations_lifecycle.py
"""

from repro import (
    AMP,
    EnvironmentConfig,
    EnvironmentGenerator,
    Job,
    MinCost,
    ResourceRequest,
)
from repro.model import SchedulingError
from repro.scheduling import ReservationLedger


def main() -> None:
    environment = EnvironmentGenerator(
        EnvironmentConfig(node_count=40, seed=77)
    ).generate()
    ledger = ReservationLedger(environment)
    job = Job(
        "user-job", ResourceRequest(node_count=4, reservation_time=120.0, budget=1400.0)
    )

    free_initially = environment.slot_pool().total_free_time()
    print(f"free node-time before any booking: {free_initially:.0f}")

    # 1. Book the earliest window.
    first = AMP().select(job, environment.slot_pool())
    booking = ledger.book(job.job_id, first)
    print(
        f"\nbooked {booking.reservation_id}: start {first.start:.1f}, "
        f"cost {first.total_cost:.1f}, nodes {first.nodes()}"
    )
    print(f"free node-time now: {environment.slot_pool().total_free_time():.0f}")

    # 2. A cheaper window exists elsewhere in the interval -> rebook.
    cheaper = MinCost().select(job, environment.slot_pool())
    if cheaper is not None and cheaper.total_cost < first.total_cost:
        booking = ledger.rebook(booking.reservation_id, cheaper)
        print(
            f"rebooked to {booking.reservation_id}: start {cheaper.start:.1f}, "
            f"cost {cheaper.total_cost:.1f} "
            f"(saved {first.total_cost - cheaper.total_cost:.1f})"
        )

    # 3. A conflicting booking is rejected atomically.
    rival = Job(
        "rival", ResourceRequest(node_count=4, reservation_time=120.0, budget=1400.0)
    )
    try:
        ledger.book(rival.job_id, booking.window)
    except SchedulingError as error:
        print(f"\nconflicting booking rejected: {error}")
    print(f"active reservations: {[r.reservation_id for r in ledger.active()]}")

    # 4. Cancel: capacity returns exactly.
    ledger.cancel(booking.reservation_id)
    free_after = environment.slot_pool().total_free_time()
    print(
        f"\ncancelled; free node-time restored: {free_after:.0f} "
        f"(initial {free_initially:.0f})"
    )
    assert abs(free_after - free_initially) < 1e-6


if __name__ == "__main__":
    main()
