# Convenience targets for the reproduction workflow.

PY ?= python

.PHONY: install test bench bench-full bench-all bench-core bench-batch \
	bench-service bench-experiments bench-resilience bench-federation \
	bench-soak bench-tenancy figures report examples clean

install:
	pip install -e . --no-build-isolation

test:
	$(PY) -m pytest tests/

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only

# The committed baselines: regenerate after intentional changes to the
# kernels, the experiment engine or the resilience layer, and diff.
bench-core:
	PYTHONPATH=src $(PY) -m repro.cli bench-core -o BENCH_core.json

bench-batch:
	PYTHONPATH=src $(PY) -m repro.cli bench-batch -o BENCH_batch.json

bench-service:
	PYTHONPATH=src $(PY) -m repro.cli bench-service -o BENCH_service.json

bench-experiments:
	PYTHONPATH=src $(PY) -m repro.cli bench-experiments -o BENCH_experiments.json

bench-resilience:
	PYTHONPATH=src $(PY) -m repro.cli bench-resilience -o BENCH_resilience.json

bench-federation:
	PYTHONPATH=src $(PY) -m repro.cli bench-federation -o BENCH_federation.json

# The 10^5-job rolling-horizon soak (~25 min on one CPU): refuses to
# record unless memory is flat, p99 is stable, and the incremental
# snapshot beats a per-cycle rebuild by the gated factor.
bench-soak:
	PYTHONPATH=src $(PY) -m repro.cli bench-soak -o BENCH_soak.json

# Hog-vs-small-tenants fairness/revenue run: refuses to record unless
# the stream was contended and DRF beat FIFO on Jain's index.
bench-tenancy:
	PYTHONPATH=src $(PY) -m repro.cli bench-tenancy -o BENCH_tenancy.json

# Regenerate every committed BENCH_*.json in one pass (one slow-ish
# command per archive; each refuses to record numbers whose invariants
# do not hold).
bench-all: bench-core bench-batch bench-service bench-experiments \
	bench-resilience bench-federation bench-soak bench-tenancy

# The paper-scale run (hours): 5000 cycles, 1000 reps, full grids.
bench-full:
	REPRO_BENCH_CYCLES=5000 REPRO_BENCH_REPS=1000 REPRO_BENCH_FULL=1 \
	$(PY) -m pytest benchmarks/ --benchmark-only

figures:
	$(PY) examples/render_figures.py 200

report:
	$(PY) -m repro.cli report --cycles 500 --reps 20 -o reproduction_report.md

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; $(PY) $$script || exit 1; \
	done

clean:
	rm -rf figures reproduction_report.md .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
