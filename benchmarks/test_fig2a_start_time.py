"""Fig. 2 (a): average start time of the selected windows.

Paper values: AMP / MinFinish / CSA start at t = 0; MinRunTime 53;
MinCost 193; MinProcTime 514.9.  The benchmarked unit is the AMP
selection (the start-time optimizer) on a fresh base environment.
"""

from benchmarks.bench_common import fresh_pool, print_figure
from repro.analysis.paper_reference import FIG2A_START_TIME
from repro.core import AMP, Criterion


def test_fig2a_start_time(benchmark, base_result, base_config):
    pool = fresh_pool(base_config)
    job = base_config.base_job()
    amp = AMP()

    window = benchmark(amp.select, job, pool)
    assert window is not None

    print_figure(
        "Fig. 2(a) - average start time", base_result, Criterion.START_TIME,
        FIG2A_START_TIME,
    )

    # Shape assertions (who wins, what the ordering is).
    means = base_result.all_means(Criterion.START_TIME)
    assert means["AMP"] < 2.0
    assert means["MinFinish"] < 2.0
    assert means["CSA"] < 2.0
    assert means["AMP"] < means["MinRunTime"] < means["MinCost"] < means["MinProcTime"]
