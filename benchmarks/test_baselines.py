"""Baselines discussed in the paper's related work: first fit and backfill.

* FirstFit (backtrack [10] / NorduGrid [11] style) assigns the first set
  of matching slots "without any optimization" — in particular it is blind
  to the budget, so its windows may be unaffordable.
* RigidBackfill (the Moab discussion of Section 1) also ignores the cost
  constraint and, crucially, treats the reservation as a rigid duration on
  every node — so on heterogeneous resources it needs much longer slots
  than the performance-aware AEP family.

This benchmark quantifies both effects against AMP on the base
environment.
"""

import numpy as np

from repro.analysis import render_table
from repro.core import AMP, FirstFit, RigidBackfill
from repro.simulation import PAPER_BUDGET
from repro.simulation.experiment import make_generator

SAMPLES = 25


def test_baselines_vs_amp(benchmark, base_config):
    generator = make_generator(base_config)
    job = base_config.base_job()
    algorithms = {"AMP": AMP(), "FirstFit": FirstFit(), "RigidBackfill": RigidBackfill()}

    found = {name: 0 for name in algorithms}
    over_budget = {name: 0 for name in algorithms}
    starts = {name: [] for name in algorithms}
    proc_times = {name: [] for name in algorithms}
    pools = [generator.generate().slot_pool() for _ in range(SAMPLES)]
    for pool in pools:
        for name, algorithm in algorithms.items():
            window = algorithm.select(job, pool)
            if window is None:
                continue
            found[name] += 1
            starts[name].append(window.start)
            proc_times[name].append(window.processor_time)
            if window.total_cost > PAPER_BUDGET:
                over_budget[name] += 1

    window = benchmark(algorithms["RigidBackfill"].select, job, pools[0])

    rows = []
    for name in algorithms:
        rows.append(
            [
                name,
                found[name],
                over_budget[name],
                float(np.mean(starts[name])) if starts[name] else None,
                float(np.mean(proc_times[name])) if proc_times[name] else None,
            ]
        )
    print()
    print(
        render_table(
            ["algorithm", "found", "over budget", "mean start", "mean CPU time"],
            rows,
            title=f"Baselines vs AMP ({SAMPLES} environments, budget {PAPER_BUDGET:.0f})",
        )
    )

    # AMP always respects the budget; FirstFit regularly busts it.
    assert over_budget["AMP"] == 0
    assert over_budget["FirstFit"] > 0
    # Rigid reservations ignore node speed, so backfill occupies far more
    # CPU time than the heterogeneity-aware AEP family (when it fits at
    # all: it needs 150 contiguous units per node).
    if proc_times["RigidBackfill"]:
        assert np.mean(proc_times["RigidBackfill"]) > 1.5 * np.mean(proc_times["AMP"])
    # Everybody schedules the base job in most environments.
    assert found["AMP"] == SAMPLES
    assert found["FirstFit"] == SAMPLES
