"""Fig. 3 (b): average used processor (CPU) time of the selected windows.

Paper values: MinRunTime 158; MinFinish 161.9; CSA 168.6; MinProcTime
171.6 (within 2% of CSA); AMP and MinCost the most consuming.  The
benchmarked unit is the simplified MinProcTime selection on a fresh base
environment.
"""

import numpy as np

from benchmarks.bench_common import fresh_pool, print_figure
from repro.analysis.paper_reference import FIG3B_PROC_TIME
from repro.core import Criterion, MinProcTime


def test_fig3b_proc_time(benchmark, base_result, base_config):
    pool = fresh_pool(base_config)
    job = base_config.base_job()
    algorithm = MinProcTime(rng=np.random.default_rng(0))

    window = benchmark(algorithm.select, job, pool)
    assert window is not None

    print_figure(
        "Fig. 3(b) - average used processor time",
        base_result,
        Criterion.PROCESSOR_TIME,
        FIG3B_PROC_TIME,
    )

    means = base_result.all_means(Criterion.PROCESSOR_TIME)
    assert means["MinRunTime"] == min(means.values())
    # The comparable group of the paper: MinFinish / CSA / MinProcTime
    # within ~10% of the winner.
    assert means["MinFinish"] <= 1.15 * means["MinRunTime"]
    assert means["CSA"] <= 1.15 * means["MinRunTime"]
    assert means["MinProcTime"] <= 1.20 * means["MinRunTime"]
    # AMP and MinCost consume the most CPU time.
    comparable_max = max(
        means["MinRunTime"], means["MinFinish"], means["CSA"], means["MinProcTime"]
    )
    assert means["AMP"] > comparable_max
    assert means["MinCost"] > comparable_max
