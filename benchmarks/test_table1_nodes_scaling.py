"""Table 1 / Fig. 5: algorithm working time vs the number of CPU nodes.

The paper measures, for node counts {50, 100, 200, 300, 400} (1000 runs
each), the per-selection working time of every algorithm plus CSA's
alternative count.  Its findings, which this module reproduces as trends:

* CSA is orders of magnitude slower and grows near-cubically (linear
  alternative count x near-quadratic per-alternative search);
* AMP is the fastest and grows near-linearly (it usually stops at the
  start of the interval);
* MinRunTime/MinFinish/MinProcTime/MinCost grow at most quadratically and
  stay fast enough for on-line use.

Each parametrized benchmark is one (algorithm, node count) cell of
Table 1; the summary test prints the full measured table next to the
paper's values and asserts the growth-trend ordering (Fig. 5's message).
"""

import numpy as np
import pytest

from benchmarks.conftest import bench_repetitions, node_sweep
from repro.analysis import render_table
from repro.analysis.paper_reference import TABLE1_CSA_ALTERNATIVES, TABLE1_MS, TABLE1_NODE_COUNTS
from repro.core import AMP, CSA, MinCost, MinFinish, MinProcTime, MinRunTime
from repro.simulation import growth_exponent
from repro.simulation.experiment import make_generator

ALGORITHMS = {
    "AMP": lambda: AMP(),
    "MinRunTime": lambda: MinRunTime(),
    "MinFinishTime": lambda: MinFinish(),
    "MinProcTime": lambda: MinProcTime(rng=np.random.default_rng(0)),
    "MinCost": lambda: MinCost(),
}


@pytest.fixture(scope="module")
def pools(base_config):
    """One pre-generated slot pool per swept node count."""
    built = {}
    for node_count in node_sweep():
        config = base_config.with_node_count(node_count)
        built[node_count] = make_generator(config).generate().slot_pool()
    return built


@pytest.mark.parametrize("node_count", node_sweep())
@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_table1_cell(benchmark, base_config, pools, name, node_count):
    """One cell of Table 1: mean selection time of one algorithm."""
    benchmark.group = f"table1-nodes-{node_count}"
    algorithm = ALGORITHMS[name]()
    job = base_config.base_job()
    window = benchmark(algorithm.select, job, pools[node_count])
    assert window is not None


@pytest.mark.parametrize("node_count", node_sweep())
def test_table1_csa_cell(benchmark, base_config, pools, node_count):
    """The CSA row of Table 1 (one full alternatives search)."""
    benchmark.group = f"table1-nodes-{node_count}"
    csa = CSA()
    job = base_config.base_job()
    alternatives = benchmark(csa.find_alternatives, job, pools[node_count])
    assert len(alternatives) > 0


def test_table1_summary_and_trends(benchmark, base_config, node_study):
    """The full Table 1 sweep: measured ms vs the paper's values."""
    repetitions = bench_repetitions()
    study = node_study
    # The benchmarked unit of this summary: one CSA search at the largest
    # swept scale (the slowest cell of the paper's Table 1).
    largest = base_config.with_node_count(max(node_sweep()))
    pool = make_generator(largest).generate().slot_pool()
    benchmark.pedantic(
        CSA().find_alternatives,
        args=(base_config.base_job(), pool),
        rounds=3,
        iterations=1,
    )

    headers = ["CPU nodes"] + [str(int(row.parameter)) for row in study.rows]
    rows = [
        ["CSA: Alternatives Num"]
        + [round(row.csa_alternatives.mean, 1) for row in study.rows],
        ["CSA per Alt (ms)"]
        + [round(row.csa_seconds_per_alternative * 1e3, 2) for row in study.rows],
        ["CSA (ms)"] + [round(row.csa_seconds.mean * 1e3, 2) for row in study.rows],
    ]
    for name in ("AMP", "MinRunTime", "MinFinish", "MinProcTime", "MinCost"):
        rows.append([f"{name} (ms)"] + [round(row.mean_ms(name), 3) for row in study.rows])
    print()
    print(
        render_table(
            headers,
            rows,
            title=(
                f"Table 1 - working time vs CPU node count "
                f"({repetitions} runs/point; paper used 1000)"
            ),
        )
    )
    paper_rows = [["paper " + name] + list(values) for name, values in TABLE1_MS.items()]
    paper_rows.insert(0, ["paper CSA: Alternatives"] + list(TABLE1_CSA_ALTERNATIVES))
    print()
    print(
        render_table(
            ["(paper, ms)"] + [str(n) for n in TABLE1_NODE_COUNTS],
            paper_rows,
            title="Table 1 - the paper's values (Java, 2010-era i3)",
        )
    )

    # Trend assertions (the content of Fig. 5).
    csa_series = [(row.parameter, row.csa_seconds.mean) for row in study.rows]
    amp_series = study.series_ms("AMP")
    csa_exponent = growth_exponent(csa_series)
    amp_exponent = growth_exponent(amp_series)
    print(
        f"\ngrowth exponents: CSA={csa_exponent:.2f} (paper ~ cubic), "
        f"AMP={amp_exponent:.2f} (paper ~ linear)"
    )
    # CSA grows clearly super-linearly and clearly faster than AMP.
    assert csa_exponent > 1.5
    assert csa_exponent > amp_exponent + 0.3
    # CSA is orders of magnitude slower than AMP at every scale.
    for row in study.rows:
        assert row.csa_seconds.mean > 10 * row.algorithm_seconds["AMP"].mean
    # CSA's alternative count grows roughly linearly with the node count.
    alt_exponent = growth_exponent(
        [(row.parameter, row.csa_alternatives.mean) for row in study.rows]
    )
    assert 0.6 <= alt_exponent <= 1.4
