"""Fig. 2 (b): average runtime of the selected windows.

Paper values: MinRunTime 33; MinFinish 34.4 (+4.2%); MinProcTime 37.7;
CSA 38; AMP and MinCost "relatively long".  The benchmarked unit is the
MinRunTime selection on a fresh base environment.
"""

from benchmarks.bench_common import fresh_pool, print_figure
from repro.analysis.paper_reference import FIG2B_RUNTIME
from repro.core import Criterion, MinRunTime


def test_fig2b_runtime(benchmark, base_result, base_config):
    pool = fresh_pool(base_config)
    job = base_config.base_job()
    algorithm = MinRunTime()

    window = benchmark(algorithm.select, job, pool)
    assert window is not None

    print_figure(
        "Fig. 2(b) - average runtime", base_result, Criterion.RUNTIME, FIG2B_RUNTIME
    )

    means = base_result.all_means(Criterion.RUNTIME)
    assert means["MinRunTime"] == min(means.values())
    assert means["MinFinish"] <= 1.15 * means["MinRunTime"]
    assert means["AMP"] > 1.3 * means["MinRunTime"]
    assert means["MinCost"] > 1.5 * means["MinRunTime"]
    # The budget keeps the fastest nodes out of reach: the runtime lands in
    # the paper's band, far above the 15 units an unconstrained search
    # would achieve on performance-10 nodes.
    assert 25.0 <= means["MinRunTime"] <= 45.0
