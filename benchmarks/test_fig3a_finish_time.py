"""Fig. 3 (a): average finish time of the selected windows.

Paper values: MinFinish 34.4; CSA 52.6 (52.9% later); MinCost 307.7.
The benchmarked unit is the MinFinish selection on a fresh base
environment.
"""

from benchmarks.bench_common import fresh_pool, print_figure
from repro.analysis.paper_reference import FIG3A_FINISH_TIME
from repro.core import Criterion, MinFinish


def test_fig3a_finish_time(benchmark, base_result, base_config):
    pool = fresh_pool(base_config)
    job = base_config.base_job()
    algorithm = MinFinish()

    window = benchmark(algorithm.select, job, pool)
    assert window is not None

    print_figure(
        "Fig. 3(a) - average finish time",
        base_result,
        Criterion.FINISH_TIME,
        FIG3A_FINISH_TIME,
    )

    means = base_result.all_means(Criterion.FINISH_TIME)
    assert means["MinFinish"] == min(means.values())
    # CSA is the closest competitor, noticeably behind (paper: +52.9%).
    others = {name: value for name, value in means.items() if name != "MinFinish"}
    assert min(others, key=others.__getitem__) == "CSA"
    assert means["CSA"] > 1.2 * means["MinFinish"]
    # MinCost finishes late: late start plus the longest runtime.
    assert means["MinCost"] > 4.0 * means["MinFinish"]
