"""Fig. 5: working-time curves vs CPU node count (the plot of Table 1).

The figure's message: the AEP-like algorithms' curves stay far below CSA's
and are ordered MinRunTime ~ MinFinish > MinCost > MinProcTime > AMP, with
AMP near-flat.  This benchmark prints the measured curves as an ASCII
chart and asserts the ordering at the largest swept scale.
"""

from benchmarks.conftest import node_sweep
from repro.simulation.experiment import make_generator
from repro.core import AMP

SERIES = ("AMP", "MinRunTime", "MinFinish", "MinProcTime", "MinCost")


def ascii_curves(study, series_names, width=60):
    """Render (parameter, ms) series as horizontal ASCII bars."""
    lines = []
    peak = max(
        value for name in series_names for _, value in study.series_ms(name)
    )
    for name in series_names:
        lines.append(f"{name}:")
        for parameter, value in study.series_ms(name):
            bar = "#" * max(1, int(width * value / peak)) if peak > 0 else ""
            lines.append(f"  {int(parameter):>5} | {bar} {value:.2f} ms")
    return "\n".join(lines)


def test_fig5_curves(benchmark, base_config, node_study):
    # Benchmarked unit: the near-flat curve of the figure (AMP) at the
    # largest scale.
    largest = base_config.with_node_count(max(node_sweep()))
    pool = make_generator(largest).generate().slot_pool()
    window = benchmark(AMP().select, base_config.base_job(), pool)
    assert window is not None

    print("\nFig. 5 - average working time vs CPU node count:")
    print(ascii_curves(node_study, SERIES))

    last = node_study.rows[-1]
    # AMP is the fastest curve at every point.
    for row in node_study.rows:
        for name in SERIES[1:]:
            assert row.mean_ms("AMP") <= row.mean_ms(name), (row.parameter, name)
    # MinRunTime / MinFinish are the slowest AEP curves at scale (paper:
    # 169 ms vs 74-92 ms for MinProcTime/MinCost at 400 nodes).
    slowest_pair = max(last.mean_ms("MinRunTime"), last.mean_ms("MinFinish"))
    assert slowest_pair >= last.mean_ms("MinProcTime")
    assert slowest_pair >= last.mean_ms("MinCost")
    # CSA (not drawn in the paper's figure because it dwarfs the rest)
    # stays far above the flattest curve.
    assert last.csa_seconds.mean * 1e3 > 10 * last.mean_ms("AMP")
