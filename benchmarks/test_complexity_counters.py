"""Structural complexity verification: the O(m) / O(n^2) claims, noise-free.

Wall-clock timings (Tables 1-2) depend on the host; the AEP scan's
*operation counters* do not.  This benchmark verifies the paper's
complexity statements structurally:

* ``slots_scanned`` equals the slot-list length — every slot is visited
  exactly once ("algorithms move through the list of the m available
  slots ... without turning back or reviewing previous steps");
* ``candidate_peak`` (the extended-window size, which bounds the per-step
  extraction cost) is bounded by the node count and does not grow with
  the interval length — so the scan is linear in slots and the per-step
  work quadratic in nodes, exactly Section 2.2's claim.
"""

from benchmarks.conftest import interval_sweep, node_sweep
from repro.core import MinCost, aep_scan
from repro.core.extractors import MinTotalCostExtractor
from repro.simulation.experiment import make_generator


def test_complexity_counters(benchmark, base_config):
    job = base_config.base_job()
    extractor = MinTotalCostExtractor()

    # Interval sweep: slots grow, alive-set (per-step cost) does not.
    interval_counts = []
    for length in interval_sweep():
        config = base_config.with_interval_length(length)
        pool = make_generator(config).generate().slot_pool()
        result = aep_scan(job, pool, extractor)
        assert result is not None
        assert result.slots_scanned == len(pool)
        interval_counts.append(
            (length, len(pool), result.slots_scanned, result.candidate_peak)
        )

    # Node sweep: alive-set grows with nodes, stays bounded by them.
    node_counts = []
    for node_count in node_sweep():
        config = base_config.with_node_count(node_count)
        pool = make_generator(config).generate().slot_pool()
        result = aep_scan(job, pool, extractor)
        assert result is not None
        assert result.candidate_peak <= node_count
        node_counts.append((node_count, result.candidate_peak))

    window = benchmark(MinCost().select, job, make_generator(base_config).generate().slot_pool())
    assert window is not None

    print("\ninterval sweep (length, slots, slots_scanned, candidate_peak):")
    for row in interval_counts:
        print(f"  {row}")
    print("node sweep (nodes, candidate_peak):")
    for row in node_counts:
        print(f"  {row}")

    # Linear in slots: scanned slots track the slot count 1:1 by
    # construction; the peak alive-set stays flat as the interval grows.
    first_peak = interval_counts[0][3]
    last_peak = interval_counts[-1][3]
    assert last_peak <= 1.5 * first_peak + 5
    # Quadratic in nodes comes from the alive set growing with the node
    # count...
    assert node_counts[-1][1] > node_counts[0][1]
    # ...while never exceeding it (one alive slot per node at any time).
    for node_count, peak in node_counts:
        assert peak <= node_count
