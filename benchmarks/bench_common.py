"""Helpers shared by the benchmark modules."""

from __future__ import annotations

from repro.analysis import comparison_table
from repro.core import Criterion
from repro.simulation import ComparisonResult, make_generator
from repro.simulation.config import ExperimentConfig


def fresh_pool(config: ExperimentConfig):
    """One freshly generated slot pool of the configured environment."""
    generator = make_generator(config)
    return generator.generate().slot_pool()


def figure_means(result: ComparisonResult, criterion: Criterion) -> dict[str, float]:
    """The means a paper figure plots: five algorithms + the CSA diagonal."""
    means = {
        name: stats.mean(criterion) for name, stats in result.algorithms.items()
    }
    means["CSA"] = result.csa_mean_of(criterion)
    return means


def print_figure(
    title: str,
    result: ComparisonResult,
    criterion: Criterion,
    reference: dict[str, float],
) -> None:
    print()
    print(
        comparison_table(
            figure_means(result, criterion),
            reference,
            title=f"{title} ({result.cycles_run} cycles; paper used 5000)",
        )
    )
