"""Helpers shared by the benchmark modules."""

from __future__ import annotations

import os

from repro.analysis import comparison_table
from repro.core import Criterion
from repro.simulation import ComparisonResult, make_generator, run_comparison
from repro.simulation.config import ExperimentConfig


def bench_workers() -> int:
    """Worker processes for multi-cycle studies (``REPRO_BENCH_WORKERS``).

    0 (the default) runs in-process; any value produces bit-identical
    aggregates, so the knob only changes wall-clock.
    """
    return int(os.environ.get("REPRO_BENCH_WORKERS", "0"))


def run_study(config: ExperimentConfig, **kwargs) -> ComparisonResult:
    """A multi-cycle comparison through the experiment engine.

    The single entry point for every statistical benchmark: spawned
    per-cycle streams, fanned out over ``REPRO_BENCH_WORKERS`` processes.
    """
    return run_comparison(config, workers=bench_workers() or None, **kwargs)


def fresh_pool(config: ExperimentConfig):
    """One freshly generated slot pool of the configured environment."""
    generator = make_generator(config)
    return generator.generate().slot_pool()


def figure_means(result: ComparisonResult, criterion: Criterion) -> dict[str, float]:
    """The means a paper figure plots: five algorithms + the CSA diagonal."""
    means = {
        name: stats.mean(criterion) for name, stats in result.algorithms.items()
    }
    means["CSA"] = result.csa_mean_of(criterion)
    return means


def print_figure(
    title: str,
    result: ComparisonResult,
    criterion: Criterion,
    reference: dict[str, float],
) -> None:
    print()
    print(
        comparison_table(
            figure_means(result, criterion),
            reference,
            title=f"{title} ({result.cycles_run} cycles; paper used 5000)",
        )
    )
