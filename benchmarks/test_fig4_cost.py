"""Fig. 4: average total job execution cost (user budget S = 1500).

Paper values: MinCost 1027.3 (68.5% of the budget); CSA cheapest 1352
(+31.6%); MinRunTime most expensive 1464 (+42.5%); the other schemes
cluster near the budget.  The benchmarked unit is the MinCost selection
on a fresh base environment.
"""

from benchmarks.bench_common import fresh_pool, print_figure
from repro.analysis.paper_reference import FIG4_COST
from repro.core import Criterion, MinCost
from repro.simulation import PAPER_BUDGET


def test_fig4_cost(benchmark, base_result, base_config):
    pool = fresh_pool(base_config)
    job = base_config.base_job()
    algorithm = MinCost()

    window = benchmark(algorithm.select, job, pool)
    assert window is not None

    print_figure(
        "Fig. 4 - average total execution cost", base_result, Criterion.COST, FIG4_COST
    )

    means = base_result.all_means(Criterion.COST)
    assert means["MinCost"] == min(means.values())
    # MinCost leaves a large budget margin; the paper reports 1027/1500.
    assert means["MinCost"] < 0.85 * PAPER_BUDGET
    # CSA's cheapest alternative is clearly more expensive (paper +31.6%).
    assert means["CSA"] > 1.2 * means["MinCost"]
    # The non-cost schemes cluster near the budget (paper: 1352-1464).
    for name in ("AMP", "MinFinish", "MinRunTime", "MinProcTime"):
        assert 0.85 * PAPER_BUDGET < means[name] <= PAPER_BUDGET
    # Everything respects the user budget.
    assert all(value <= PAPER_BUDGET for value in means.values())
