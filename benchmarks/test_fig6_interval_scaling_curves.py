"""Fig. 6: working-time curves vs scheduling-interval length (Table 2 plot).

The figure's message: every AEP-like algorithm grows *linearly* in the
interval length (equivalently, in the number of available slots), with the
same curve ordering as Fig. 5.  This benchmark prints the measured curves
and asserts approximate linearity by comparing endpoint ratios.
"""

from benchmarks.conftest import interval_sweep
from benchmarks.test_fig5_node_scaling_curves import SERIES, ascii_curves
from repro.core import MinProcTime
from repro.simulation.experiment import make_generator


def test_fig6_curves(benchmark, base_config, interval_study):
    largest = base_config.with_interval_length(max(interval_sweep()))
    pool = make_generator(largest).generate().slot_pool()
    import numpy as np

    algorithm = MinProcTime(rng=np.random.default_rng(0))
    window = benchmark(algorithm.select, base_config.base_job(), pool)
    assert window is not None

    print("\nFig. 6 - average working time vs scheduling interval length:")
    print(ascii_curves(interval_study, SERIES))

    first, last = interval_study.rows[0], interval_study.rows[-1]
    scale = last.parameter / first.parameter
    for name in SERIES[1:]:  # AMP is near-constant; checked separately
        ratio = last.mean_ms(name) / max(first.mean_ms(name), 1e-9)
        print(f"{name}: x{scale:.0f} interval -> x{ratio:.2f} time")
        # Linear growth: time ratio tracks the interval ratio, staying
        # well below quadratic blow-up.
        assert ratio < scale * scale / 1.5, name
    # AMP usually finds its window at the beginning of the interval, so
    # its time barely grows with the interval length (paper: 0.5 -> 2.1 ms
    # while the interval grows 6x).  AMP's absolute time is ~0.1 ms here,
    # so the ratio is noisy; assert the flat *shape*: AMP stays two orders
    # of magnitude below the full-scan algorithms at the largest interval.
    amp_ratio = last.mean_ms("AMP") / max(first.mean_ms("AMP"), 1e-9)
    print(f"AMP: x{scale:.0f} interval -> x{amp_ratio:.2f} time")
    assert amp_ratio < 1.5 * scale
    assert last.mean_ms("AMP") < last.mean_ms("MinRunTime") / 20.0
