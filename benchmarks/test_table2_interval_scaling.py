"""Table 2 / Fig. 6: algorithm working time vs scheduling-interval length.

The paper measures, for interval lengths {600..3600} (1000 runs each, 100
nodes), the working time of every algorithm, the number of published
slots, and CSA's alternative count.  Its finding, reproduced here as a
trend: "all proposed algorithms have a linear complexity with respect to
the length of the scheduling interval and, hence, to the number of the
available slots".

Each parametrized benchmark is one (algorithm, interval length) cell; the
summary prints the measured table next to the paper's and asserts the
linear-growth claims.
"""

import numpy as np
import pytest

from benchmarks.conftest import bench_repetitions, interval_sweep
from repro.analysis import render_table
from repro.analysis.paper_reference import (
    TABLE2_CSA_ALTERNATIVES,
    TABLE2_INTERVALS,
    TABLE2_MS,
    TABLE2_SLOT_COUNTS,
)
from repro.core import AMP, CSA, MinCost, MinFinish, MinProcTime, MinRunTime
from repro.simulation import growth_exponent
from repro.simulation.experiment import make_generator

ALGORITHMS = {
    "AMP": lambda: AMP(),
    "MinRunTime": lambda: MinRunTime(),
    "MinFinishTime": lambda: MinFinish(),
    "MinProcTime": lambda: MinProcTime(rng=np.random.default_rng(0)),
    "MinCost": lambda: MinCost(),
}


@pytest.fixture(scope="module")
def pools(base_config):
    """One pre-generated slot pool per swept interval length."""
    built = {}
    for length in interval_sweep():
        config = base_config.with_interval_length(length)
        built[length] = make_generator(config).generate().slot_pool()
    return built


@pytest.mark.parametrize("length", interval_sweep())
@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_table2_cell(benchmark, base_config, pools, name, length):
    """One cell of Table 2: mean selection time of one algorithm."""
    benchmark.group = f"table2-interval-{int(length)}"
    algorithm = ALGORITHMS[name]()
    job = base_config.base_job()
    window = benchmark(algorithm.select, job, pools[length])
    assert window is not None


@pytest.mark.parametrize("length", interval_sweep())
def test_table2_csa_cell(benchmark, base_config, pools, length):
    """The CSA row of Table 2 (one full alternatives search)."""
    benchmark.group = f"table2-interval-{int(length)}"
    csa = CSA()
    job = base_config.base_job()
    alternatives = benchmark(csa.find_alternatives, job, pools[length])
    assert len(alternatives) > 0


def test_table2_summary_and_trends(benchmark, base_config, interval_study):
    """The full Table 2 sweep: measured ms vs the paper's values."""
    repetitions = bench_repetitions()
    study = interval_study
    # The benchmarked unit: one full-interval AMP selection at the largest
    # swept length (the linearly growing scan the table is about).
    largest = base_config.with_interval_length(max(interval_sweep()))
    pool = make_generator(largest).generate().slot_pool()
    benchmark.pedantic(
        MinCost().select, args=(base_config.base_job(), pool), rounds=3, iterations=1
    )

    headers = ["Interval"] + [str(int(row.parameter)) for row in study.rows]
    rows = [
        ["Number of slots"] + [round(row.slot_count.mean, 1) for row in study.rows],
        ["CSA: Alternatives Num"]
        + [round(row.csa_alternatives.mean, 1) for row in study.rows],
        ["CSA per Alt (ms)"]
        + [round(row.csa_seconds_per_alternative * 1e3, 2) for row in study.rows],
        ["CSA (ms)"] + [round(row.csa_seconds.mean * 1e3, 2) for row in study.rows],
    ]
    for name in ("AMP", "MinRunTime", "MinFinish", "MinProcTime", "MinCost"):
        rows.append(
            [f"{name} (ms)"] + [round(row.mean_ms(name), 3) for row in study.rows]
        )
    print()
    print(
        render_table(
            headers,
            rows,
            title=(
                f"Table 2 - working time vs scheduling interval length "
                f"({repetitions} runs/point; paper used 1000)"
            ),
        )
    )
    paper_rows = [["paper Number of slots"] + list(TABLE2_SLOT_COUNTS)]
    paper_rows.append(["paper CSA: Alternatives"] + list(TABLE2_CSA_ALTERNATIVES))
    paper_rows.extend(
        ["paper " + name] + list(values) for name, values in TABLE2_MS.items()
    )
    print()
    print(
        render_table(
            ["(paper, ms)"] + [str(n) for n in TABLE2_INTERVALS],
            paper_rows,
            title="Table 2 - the paper's values (Java, 2010-era i3)",
        )
    )

    # Trend assertions (the content of Fig. 6).
    slot_exponent = growth_exponent(
        [(row.parameter, row.slot_count.mean) for row in study.rows]
    )
    print(f"\nslot count growth exponent: {slot_exponent:.2f} (paper ~ linear)")
    assert 0.7 <= slot_exponent <= 1.3  # slots grow linearly with interval

    for name in ("AMP", "MinRunTime", "MinFinish", "MinProcTime", "MinCost"):
        exponent = growth_exponent(study.series_ms(name))
        print(f"{name} growth exponent vs interval: {exponent:.2f}")
        # "Linear complexity with respect to the length of the scheduling
        # interval": the empirical order stays well below quadratic.
        assert exponent <= 1.6, name

    # CSA alternative count grows roughly linearly with the interval.
    alt_exponent = growth_exponent(
        [(row.parameter, row.csa_alternatives.mean) for row in study.rows]
    )
    print(f"CSA alternatives growth exponent: {alt_exponent:.2f}")
    assert 0.6 <= alt_exponent <= 1.4
