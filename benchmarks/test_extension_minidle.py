"""Extension study: co-allocation waste (MinIdle vs the paper's five).

The paper's criteria ignore the area above the "rough right edge": the
node-time a tightly coupled job's early tasks spend blocked on the
stragglers.  This study measures that waste for every evaluated algorithm
on the base environment and shows what the dedicated MinIdle criterion
recovers — and what it pays in runtime and cost for perfectly balanced
windows.
"""

import numpy as np

from repro.analysis import render_table
from repro.core import AMP, Criterion, MinCost, MinFinish, MinIdle, MinRunTime
from repro.simulation.experiment import make_generator

SAMPLES = 25
ALGORITHMS = (AMP(), MinFinish(), MinRunTime(), MinCost(), MinIdle())


def test_extension_minidle(benchmark, base_config):
    generator = make_generator(base_config)
    job = base_config.base_job()
    idle = {algorithm.name: [] for algorithm in ALGORITHMS}
    runtime = {algorithm.name: [] for algorithm in ALGORITHMS}
    cost = {algorithm.name: [] for algorithm in ALGORITHMS}
    pools = [generator.generate().slot_pool() for _ in range(SAMPLES)]
    for pool in pools:
        for algorithm in ALGORITHMS:
            window = algorithm.select(job, pool)
            assert window is not None
            idle[algorithm.name].append(window.idle_time)
            runtime[algorithm.name].append(window.runtime)
            cost[algorithm.name].append(window.total_cost)

    window = benchmark(MinIdle().select, job, pools[0])
    assert window is not None

    rows = [
        [
            name,
            float(np.mean(idle[name])),
            float(np.mean(runtime[name])),
            float(np.mean(cost[name])),
        ]
        for name in idle
    ]
    rows.sort(key=lambda row: row[1])
    print()
    print(
        render_table(
            ["algorithm", "mean idle time", "mean runtime", "mean cost"],
            rows,
            title=f"Co-allocation waste across criteria ({SAMPLES} environments)",
        )
    )

    # MinIdle wins its own criterion by a wide margin...
    best_other = min(
        float(np.mean(values)) for name, values in idle.items() if name != "MinIdle"
    )
    assert float(np.mean(idle["MinIdle"])) < 0.6 * best_other
    # ...with near-balanced windows (tiny absolute waste)...
    assert float(np.mean(idle["MinIdle"])) < 20.0
    # ...while staying within the budget like everyone else.
    assert max(cost["MinIdle"]) <= 1500.0 + 1e-6
