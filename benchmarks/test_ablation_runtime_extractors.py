"""Ablation: the paper's substitution heuristic vs the exact runtime sweep.

DESIGN.md calls out that the paper's MinRunTime window extraction (swap
the longest slot for the cheapest shorter one while the budget holds) is a
heuristic.  This benchmark quantifies, on the base environment, (a) how
close the heuristic gets to the exact optimum and (b) what the exact sweep
costs in working time.
"""

import numpy as np

from repro.analysis import render_table
from repro.core import Criterion, MinRunTime
from repro.simulation.experiment import make_generator

SAMPLES = 25


def test_ablation_runtime_extractors(benchmark, base_config):
    generator = make_generator(base_config)
    job = base_config.base_job()
    heuristic = MinRunTime(exact=False)
    exact = MinRunTime(exact=True)

    gaps = []
    heuristic_runtimes, exact_runtimes = [], []
    pools = [generator.generate().slot_pool() for _ in range(SAMPLES)]
    for pool in pools:
        window_heuristic = heuristic.select(job, pool)
        window_exact = exact.select(job, pool)
        assert (window_heuristic is None) == (window_exact is None)
        if window_exact is None:
            continue
        assert window_exact.runtime <= window_heuristic.runtime + 1e-9
        heuristic_runtimes.append(window_heuristic.runtime)
        exact_runtimes.append(window_exact.runtime)
        gaps.append(
            (window_heuristic.runtime - window_exact.runtime) / window_exact.runtime
        )

    # Benchmarked unit: the exact extractor (the more expensive variant).
    window = benchmark(exact.select, job, pools[0])
    assert window is not None

    print()
    print(
        render_table(
            ["variant", "mean runtime", "vs exact"],
            [
                ["substitution (paper)", float(np.mean(heuristic_runtimes)),
                 f"+{np.mean(gaps):.1%}"],
                ["exact sweep", float(np.mean(exact_runtimes)), "-"],
            ],
            title=f"Ablation - MinRunTime extraction ({SAMPLES} environments)",
        )
    )

    # The heuristic is good: on the base environment it stays within a few
    # percent of the optimum (which is why the paper can afford it).
    assert np.mean(gaps) < 0.10
    assert np.mean(gaps) >= 0.0
