"""Ablation: generic per-step sorting vs incremental cost order.

Quantifies the constant-factor headroom the paper's scan structure leaves:
maintaining the candidate order incrementally (``repro.core.fastscan``)
returns identical MinCost windows at a fraction of the per-selection time.
"""

import time

import numpy as np

from repro.analysis import render_table
from repro.core import MinCost
from repro.core.fastscan import fast_min_cost
from repro.simulation.experiment import make_generator

SAMPLES = 10


def test_ablation_fast_scan(benchmark, base_config):
    generator = make_generator(base_config)
    job = base_config.base_job()
    reference = MinCost()
    pools = [generator.generate().slot_pool() for _ in range(SAMPLES)]

    slow_seconds = fast_seconds = 0.0
    for pool in pools:
        begin = time.perf_counter()
        slow = reference.select(job, pool)
        slow_seconds += time.perf_counter() - begin
        begin = time.perf_counter()
        fast = fast_min_cost(job, pool)
        fast_seconds += time.perf_counter() - begin
        assert fast.total_cost == slow.total_cost or abs(
            fast.total_cost - slow.total_cost
        ) < 1e-6

    window = benchmark(fast_min_cost, job, pools[0])
    assert window is not None

    speedup = slow_seconds / max(fast_seconds, 1e-12)
    print()
    print(
        render_table(
            ["variant", "total seconds", "speedup"],
            [
                ["generic scan (sort per step)", slow_seconds, "1.0x"],
                ["incremental order", fast_seconds, f"{speedup:.1f}x"],
            ],
            title=f"Ablation - MinCost scan implementation ({SAMPLES} environments)",
            precision=4,
        )
    )

    # Identical results, and no slower than the generic implementation
    # (allow a noise margin; typically the fast scan is 1.5-3x faster).
    assert fast_seconds <= slow_seconds * 1.2
