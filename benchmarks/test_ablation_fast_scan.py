"""Ablation: generic per-step sorting vs incremental cost order.

Quantifies the constant-factor headroom the paper's scan structure leaves:
maintaining the candidate order incrementally (the main kernel behind
``MinCost``, see ``repro.core.candidates``) returns identical MinCost
windows at a fraction of the per-selection time of the frozen generic
kernel (``repro.core.reference``), which re-sorts the candidates at every
scan step.
"""

import time

from repro.analysis import render_table
from repro.core import MinCost
from repro.core.extractors import MinTotalCostExtractor
from repro.core.reference import reference_scan
from repro.simulation.experiment import make_generator

SAMPLES = 10


def generic_min_cost(job, pool):
    """MinCost through the frozen pre-incremental kernel."""
    result = reference_scan(job, pool.ordered(), MinTotalCostExtractor())
    return result.window if result is not None else None


def test_ablation_fast_scan(benchmark, base_config):
    generator = make_generator(base_config)
    job = base_config.base_job()
    incremental = MinCost()
    pools = [generator.generate().slot_pool() for _ in range(SAMPLES)]

    slow_seconds = fast_seconds = 0.0
    for pool in pools:
        begin = time.perf_counter()
        slow = generic_min_cost(job, pool)
        slow_seconds += time.perf_counter() - begin
        begin = time.perf_counter()
        fast = incremental.select(job, pool)
        fast_seconds += time.perf_counter() - begin
        assert fast.total_cost == slow.total_cost or abs(
            fast.total_cost - slow.total_cost
        ) < 1e-6

    window = benchmark(incremental.select, job, pools[0])
    assert window is not None

    speedup = slow_seconds / max(fast_seconds, 1e-12)
    print()
    print(
        render_table(
            ["variant", "total seconds", "speedup"],
            [
                ["generic scan (sort per step)", slow_seconds, "1.0x"],
                ["incremental order", fast_seconds, f"{speedup:.1f}x"],
            ],
            title=f"Ablation - MinCost scan implementation ({SAMPLES} environments)",
            precision=4,
        )
    )

    # Identical results, and no slower than the generic implementation
    # (allow a noise margin; typically the incremental scan is 1.5-3x faster).
    assert fast_seconds <= slow_seconds * 1.2
