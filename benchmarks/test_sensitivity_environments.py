"""Sensitivity study: where the paper's conclusions hold and where they bend.

Runs the Figs. 2-4 comparison on perturbed environment families (presets
in :mod:`repro.environment.presets`) and checks the predictable shifts:

* **homogeneous** nodes erase MinRunTime's runtime advantage (every window
  runs at the same speed);
* **literal proportional pricing** un-binds the budget on fast nodes, so
  MinRunTime collapses to the hardware-limit runtime (the calibration
  argument of ``repro.environment.pricing`` made measurable);
* **high load** slashes CSA's alternative supply;
* **noisy market** widens the MinCost advantage.
"""

from dataclasses import replace

from repro.analysis import render_table
from repro.core import Criterion
from repro.core.algorithms import MinCost, MinRunTime
from repro.environment import preset
from repro.simulation import ExperimentConfig

from benchmarks.bench_common import run_study
from repro.simulation.experiment import make_generator

CYCLES = 25
PRESET_NAMES = (
    "paper-base",
    "low-load",
    "high-load",
    "homogeneous",
    "literal-pricing",
    "noisy-market",
)


def config_for(name: str) -> ExperimentConfig:
    return ExperimentConfig(environment=preset(name), cycles=CYCLES, seed=99)


def test_sensitivity_across_environments(benchmark, base_config):
    results = {name: run_study(config_for(name)) for name in PRESET_NAMES}

    window = benchmark(
        MinRunTime().select,
        base_config.base_job(),
        make_generator(config_for("paper-base")).generate().slot_pool(),
    )
    assert window is not None

    rows = []
    for name, result in results.items():
        runtime_edge = (
            result.mean_of("AMP", Criterion.RUNTIME)
            / max(result.mean_of("MinRunTime", Criterion.RUNTIME), 1e-9)
        )
        cost_edge = result.csa_mean_of(Criterion.COST) / max(
            result.mean_of("MinCost", Criterion.COST), 1e-9
        )
        rows.append(
            [
                name,
                result.mean_of("MinRunTime", Criterion.RUNTIME),
                f"x{runtime_edge:.2f}",
                f"x{cost_edge:.2f}",
                result.csa.alternatives.mean,
                result.algorithms["AMP"].find_rate,
            ]
        )
    print()
    print(
        render_table(
            [
                "environment",
                "MinRunTime runtime",
                "runtime edge vs AMP",
                "MinCost edge vs CSA",
                "CSA alts",
                "find rate",
            ],
            rows,
            title=f"Sensitivity across environment presets ({CYCLES} cycles each)",
        )
    )

    base = results["paper-base"]

    # Homogeneous speeds: runtime identical across algorithms, edge ~ 1.
    homogeneous = results["homogeneous"]
    assert (
        homogeneous.mean_of("AMP", Criterion.RUNTIME)
        / homogeneous.mean_of("MinRunTime", Criterion.RUNTIME)
        < 1.05
    )
    assert (
        base.mean_of("AMP", Criterion.RUNTIME)
        / base.mean_of("MinRunTime", Criterion.RUNTIME)
        > 1.3
    )

    # Literal pricing: the budget stops binding; MinRunTime approaches the
    # hardware limit of 150 / 10 = 15.
    literal = results["literal-pricing"]
    assert literal.mean_of("MinRunTime", Criterion.RUNTIME) < 22.0
    assert base.mean_of("MinRunTime", Criterion.RUNTIME) > 28.0

    # High load dries up the alternative supply and starts costing find
    # rate; low load keeps everything feasible.  (Note low load does NOT
    # increase the alternative count: fewer local jobs mean fewer,
    # longer slots, and consume-cutting counts slots, not free time.)
    assert (
        results["high-load"].csa.alternatives.mean
        < 0.5 * base.csa.alternatives.mean
    )
    assert results["low-load"].algorithms["AMP"].find_rate == 1.0
    assert (
        results["high-load"].algorithms["AMP"].find_rate
        <= results["low-load"].algorithms["AMP"].find_rate
    )

    # A noisier market widens MinCost's relative advantage.
    noisy_edge = results["noisy-market"].csa_mean_of(Criterion.COST) / results[
        "noisy-market"
    ].mean_of("MinCost", Criterion.COST)
    base_edge = base.csa_mean_of(Criterion.COST) / base.mean_of(
        "MinCost", Criterion.COST
    )
    assert noisy_edge > base_edge
