"""Ablation: AMP window-composition policy (first-in-scan-order vs cheapest).

The paper's AMP takes the first ``n`` parallel slots affordable under the
budget, evicting the most expensive slot of the forming window whenever it
busts the budget.  The "cheapest" policy instead tests the ``n`` cheapest
alive candidates at every step, which provably minimizes the start time.

Measured finding (worth recording): on the generated environments the two
policies coincide almost always.  The eviction rule keeps discarding the
prefix maximum until the forming window is affordable, which at the first
feasible scan step leaves exactly the cheapest feasible subset — so the
paper-faithful scan achieves the provably optimal start time in practice,
while costing one sort less per step.  The policies only drift apart under
very tight budgets, where eviction is permanent but the cheapest-subset
search may re-use a slot it would have evicted.
"""

import numpy as np

from repro.analysis import render_table
from repro.core import AMP
from repro.model import Job, ResourceRequest
from repro.simulation.experiment import make_generator

SAMPLES = 25
TIGHT_BUDGET = 1050.0


def _compare(job, pools):
    first, cheapest = AMP(policy="first"), AMP(policy="cheapest")
    stats = {"start_diff": [], "cost_diff": [], "found": 0}
    for pool in pools:
        window_first = first.select(job, pool)
        window_cheapest = cheapest.select(job, pool)
        assert (window_first is None) == (window_cheapest is None)
        if window_first is None:
            continue
        # Optimality of the cheapest policy: never a later start.
        assert window_cheapest.start <= window_first.start + 1e-9
        stats["found"] += 1
        stats["start_diff"].append(window_first.start - window_cheapest.start)
        stats["cost_diff"].append(window_first.total_cost - window_cheapest.total_cost)
    return stats


def test_ablation_amp_policy(benchmark, base_config):
    generator = make_generator(base_config)
    pools = [generator.generate().slot_pool() for _ in range(SAMPLES)]
    base_job = base_config.base_job()
    tight_job = Job(
        "tight",
        ResourceRequest(
            node_count=base_job.request.node_count,
            reservation_time=base_job.request.reservation_time,
            budget=TIGHT_BUDGET,
        ),
    )

    base_stats = _compare(base_job, pools)
    tight_stats = _compare(tight_job, pools)

    window = benchmark(AMP(policy="first").select, base_job, pools[0])
    assert window is not None

    print()
    print(
        render_table(
            ["budget", "windows", "mean start gap", "mean cost gap"],
            [
                [
                    "1500 (paper)",
                    base_stats["found"],
                    float(np.mean(base_stats["start_diff"])),
                    float(np.mean(base_stats["cost_diff"])),
                ],
                [
                    f"{TIGHT_BUDGET:.0f} (tight)",
                    tight_stats["found"],
                    float(np.mean(tight_stats["start_diff"])),
                    float(np.mean(tight_stats["cost_diff"])),
                ],
            ],
            title=(
                "Ablation - AMP eviction scan vs cheapest-subset scan "
                f"({SAMPLES} environments; gap = first - cheapest)"
            ),
        )
    )

    # On the base experiment the eviction scan is start-time optimal: it
    # matches the provably optimal policy exactly.
    assert np.mean(base_stats["start_diff"]) <= 1e-6
    assert abs(np.mean(base_stats["cost_diff"])) < 1.0
    # Under a tight budget both policies still agree on feasibility and
    # the eviction scan stays within a small start-time gap.
    assert tight_stats["found"] > 0
    assert np.mean(tight_stats["start_diff"]) >= 0.0
    assert np.mean(tight_stats["start_diff"]) < 30.0
