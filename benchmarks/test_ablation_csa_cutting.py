"""Ablation: the CSA slot-cutting policy (consume vs split).

DESIGN.md: consume-cutting (drop each used slot entirely) reproduces the
paper's alternative counts; split-cutting (re-insert the unused slot
remainders, reference [17]'s finer bookkeeping) packs several times more
alternatives into the same environment at a higher search cost.  This
benchmark quantifies both sides.
"""

import numpy as np

from repro.analysis import render_table
from repro.core import CSA, Criterion
from repro.simulation.experiment import make_generator

SAMPLES = 8


def test_ablation_csa_cutting(benchmark, base_config):
    generator = make_generator(base_config)
    job = base_config.base_job()
    consume = CSA(cut_mode="consume")
    split = CSA(cut_mode="split")

    counts = {"consume": [], "split": []}
    cheapest = {"consume": [], "split": []}
    pools = [generator.generate().slot_pool() for _ in range(SAMPLES)]
    for pool in pools:
        for name, algorithm in (("consume", consume), ("split", split)):
            alternatives = algorithm.find_alternatives(job, pool)
            counts[name].append(len(alternatives))
            if alternatives:
                cheapest[name].append(
                    min(Criterion.COST.evaluate(w) for w in alternatives)
                )

    alternatives = benchmark(consume.find_alternatives, job, pools[0])
    assert alternatives

    print()
    print(
        render_table(
            ["cut policy", "alternatives/cycle", "cheapest alt cost"],
            [
                [
                    name,
                    float(np.mean(counts[name])),
                    float(np.mean(cheapest[name])),
                ]
                for name in ("consume", "split")
            ],
            title=(
                f"Ablation - CSA cutting policy ({SAMPLES} environments; "
                "paper reports 57 alternatives with its coarse cutting)"
            ),
        )
    )

    # Split-cutting packs strictly more alternatives into the same free
    # time.  (The two alternative sets are not nested — after the first
    # cut the searches diverge — so per-criterion quality is similar, not
    # ordered; the count is the real difference.)
    assert np.mean(counts["split"]) > 1.5 * np.mean(counts["consume"])
    # Both policies find the same first (earliest) window, so the cheapest
    # alternative of either policy stays in the same cost band.
    ratio = np.mean(cheapest["split"]) / np.mean(cheapest["consume"])
    assert 0.85 < ratio < 1.15
