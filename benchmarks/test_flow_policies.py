"""Extension study: VO phase-two policies over a sustained job flow.

The paper's algorithms feed phase one of the enclosing scheduling scheme;
this study measures the *policy* effect over many cycles: running the same
seeded workload under different phase-two criteria, the cheapest policy
spends the least per scheduled job and the finish-time policy keeps
makespan short — the job-flow counterpart of Fig. 4's spread.
"""

from repro.analysis import render_table
from repro.core import CSA, Criterion
from repro.environment import EnvironmentConfig
from repro.scheduling import BatchScheduler, FlowConfig, JobFlowSimulation
from repro.simulation import JobGenerator

POLICIES = (Criterion.FINISH_TIME, Criterion.COST, Criterion.PROCESSOR_TIME)
SEED = 31337


def run_policy(criterion: Criterion):
    config = FlowConfig(
        cycles=6,
        arrivals_per_cycle=4,
        max_deferrals=2,
        environment=EnvironmentConfig(node_count=40),
        seed=SEED,
    )
    scheduler = BatchScheduler(search=CSA(max_alternatives=10), criterion=criterion)
    simulation = JobFlowSimulation(
        config, scheduler=scheduler, job_generator=JobGenerator(seed=SEED)
    )
    return simulation.run()


def test_flow_policies(benchmark):
    results = {criterion: run_policy(criterion) for criterion in POLICIES}

    # Benchmarked unit: one full flow under the default policy.
    benchmark.pedantic(run_policy, args=(Criterion.FINISH_TIME,), rounds=1, iterations=1)

    rows = [
        [
            criterion.label,
            result.scheduled_total,
            result.dropped_total,
            result.cost.mean,
            result.waiting_cycles.mean,
        ]
        for criterion, result in results.items()
    ]
    print()
    print(
        render_table(
            ["phase-2 policy", "scheduled", "dropped", "mean cost", "mean wait"],
            rows,
            title="VO policies over 6 cycles x 4 arrivals (identical workload)",
        )
    )

    # The cheapest policy pays the least per scheduled job.
    cost_policy = results[Criterion.COST].cost.mean
    for criterion in (Criterion.FINISH_TIME, Criterion.PROCESSOR_TIME):
        assert cost_policy <= results[criterion].cost.mean + 1e-9

    # Every policy schedules the bulk of the workload on 40 nodes.
    for result in results.values():
        assert result.scheduled_total >= 0.7 * (6 * 4)
        assert 0.0 <= result.drop_rate <= 0.3
