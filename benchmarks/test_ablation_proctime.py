"""Ablation: simplified (random) vs greedy vs exact MinProcTime.

The paper keeps the simplified variant because it is "on the average only
2% less effective than the CSA scheme, while its working time is orders of
magnitude less".  This benchmark measures the quality gap between the
random selection, the greedy-substitution optimizer, the exact
branch-and-bound per-step solver (the 0-1 program of Section 2.1 solved
exactly — the IP-style comparator of the related work), and the CSA
selection — plus the working-time price of each rung, which quantifies
the paper's claim that exact IP-style solving "may be an obstacle for
on-line use".
"""

import time

import numpy as np

from repro.analysis import render_table
from repro.core import CSA, Criterion, MinProcTime
from repro.simulation.experiment import make_generator

SAMPLES = 8


def test_ablation_proctime(benchmark, base_config):
    generator = make_generator(base_config)
    job = base_config.base_job()
    variants = {
        "simplified (paper)": MinProcTime(
            simplified=True, rng=np.random.default_rng(0)
        ),
        "greedy optimizer": MinProcTime(simplified=False),
        "exact (IP-style)": MinProcTime(simplified=False, exact=True),
    }
    csa = CSA()

    values = {name: [] for name in variants}
    values["CSA selection"] = []
    seconds = {name: 0.0 for name in variants}
    seconds["CSA selection"] = 0.0
    pools = [generator.generate().slot_pool() for _ in range(SAMPLES)]
    for pool in pools:
        windows = {}
        for name, algorithm in variants.items():
            begin = time.perf_counter()
            windows[name] = algorithm.select(job, pool)
            seconds[name] += time.perf_counter() - begin
        begin = time.perf_counter()
        alternatives = csa.find_alternatives(job, pool)
        seconds["CSA selection"] += time.perf_counter() - begin
        if any(window is None for window in windows.values()) or not alternatives:
            continue
        for name, window in windows.items():
            values[name].append(window.processor_time)
        values["CSA selection"].append(
            min(Criterion.PROCESSOR_TIME.evaluate(w) for w in alternatives)
        )
        # The exact solver is a true lower bound per environment.
        assert windows["exact (IP-style)"].processor_time <= (
            windows["greedy optimizer"].processor_time + 1e-9
        )

    window = benchmark(variants["greedy optimizer"].select, job, pools[0])
    assert window is not None

    means = {name: float(np.mean(series)) for name, series in values.items()}
    rows = [
        [name, means[name], f"{(means[name] / means['exact (IP-style)'] - 1):+.1%}",
         seconds[name]]
        for name in sorted(means, key=means.__getitem__)
    ]
    print()
    print(
        render_table(
            ["variant", "mean processor time", "vs exact", "total seconds"],
            rows,
            title=f"Ablation - MinProcTime selection ({len(values['CSA selection'])} environments)",
            precision=3,
        )
    )

    # Quality ordering: exact <= greedy <= {random, CSA}.
    assert means["exact (IP-style)"] <= means["greedy optimizer"] + 1e-9
    assert means["greedy optimizer"] <= means["simplified (paper)"] + 1e-9
    # The paper's own claim is about the random variant vs CSA: within a
    # few percent.
    assert abs(means["simplified (paper)"] / means["CSA selection"] - 1.0) < 0.10
    # The price of exactness: the per-step 0-1 program costs orders of
    # magnitude more time — the on-line-use obstacle the paper cites for
    # IP-based co-allocation.
    assert seconds["exact (IP-style)"] > 10 * seconds["simplified (paper)"]
