"""Section 3.3's summary claims, checked as a block.

* each full AEP scheme obtains the best result on its own criterion;
* a single AEP run has a 10-50% advantage over the AMP window on the
  target criterion;
* MinFinish spends almost the whole budget while MinCost keeps a ~43%
  margin (1464 vs 1027 of 1500);
* the CSA alternative count sits at the balance point of resource
  availability vs job requirements (57 in the paper's base environment).
"""

from benchmarks.bench_common import fresh_pool
from repro.analysis import (
    advantage_over_amp,
    check_best_on_own_criterion,
    check_budget_usage,
    check_early_starters,
    check_late_algorithms,
)
from repro.core import Criterion, MinFinish
from repro.simulation import PAPER_BUDGET


def test_shape_claims(benchmark, base_result, base_config):
    window = benchmark(MinFinish().select, base_config.base_job(), fresh_pool(base_config))
    assert window is not None

    verdicts = []
    verdicts.extend(check_best_on_own_criterion(base_result))
    verdicts.extend(check_budget_usage(base_result, PAPER_BUDGET))
    verdicts.append(check_early_starters(base_result))
    verdicts.append(check_late_algorithms(base_result))

    print("\nSection 3.3 shape claims:")
    for verdict in verdicts:
        print(f"  {verdict}")

    improvements = advantage_over_amp(base_result)
    print("\nSingle AEP run advantage over AMP (paper: 10-50%):")
    for criterion, improvement in improvements.items():
        print(f"  {criterion.label}: {improvement:+.1%}")

    failing = [str(v) for v in verdicts if not v.holds]
    assert not failing, failing

    # The paper's 10-50% band, with slack for the statistical experiment
    # size: every owned criterion improves on AMP by at least 8%.
    for criterion in (Criterion.RUNTIME, Criterion.FINISH_TIME, Criterion.COST):
        assert improvements[criterion] >= 0.08, criterion

    print(
        f"\nCSA alternatives per cycle: {base_result.csa.alternatives.mean:.1f} "
        "(paper: 57)"
    )
    assert 15.0 <= base_result.csa.alternatives.mean <= 90.0
