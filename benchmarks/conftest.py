"""Shared fixtures for the benchmark harness.

Every table and figure of the paper's Section 3 has a benchmark module
here.  The statistical experiments (Figs. 2-4) share one session-scoped
comparison run; the timing experiments (Tables 1-2 / Figs. 5-6) measure
the algorithms directly through pytest-benchmark.

Scale knobs (environment variables):

``REPRO_BENCH_CYCLES``
    Scheduling cycles for the Fig. 2-4 statistics (default 150; the paper
    used 5000 — set 5000 for a full reproduction, ~10 min).
``REPRO_BENCH_REPS``
    Repetitions per swept point in the Table 1-2 trend studies (default 5;
    the paper used 1000).
``REPRO_BENCH_FULL``
    Set to 1 to sweep the paper's full parameter grids (nodes up to 400,
    intervals up to 3600) instead of the abbreviated default grids.
``REPRO_BENCH_WORKERS``
    Worker processes for the Fig. 2-4 statistics (default 0 = in-process;
    the aggregates are bit-identical for every worker count, so this only
    changes wall-clock).
"""

from __future__ import annotations

import os

import pytest

from repro.environment import EnvironmentConfig
from repro.simulation import ExperimentConfig

from benchmarks.bench_common import run_study

BENCH_SEED = 20130901  # PaCT 2013 took place in September 2013.


def bench_cycles() -> int:
    return int(os.environ.get("REPRO_BENCH_CYCLES", "150"))


def bench_repetitions() -> int:
    return int(os.environ.get("REPRO_BENCH_REPS", "5"))


def full_sweep() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


def node_sweep() -> tuple[int, ...]:
    if full_sweep():
        return (50, 100, 200, 300, 400)
    return (50, 100, 200)


def interval_sweep() -> tuple[float, ...]:
    if full_sweep():
        return (600.0, 1200.0, 1800.0, 2400.0, 3000.0, 3600.0)
    return (600.0, 1200.0, 2400.0)


def base_experiment_config(cycles: int) -> ExperimentConfig:
    return ExperimentConfig(
        environment=EnvironmentConfig(node_count=100),
        cycles=cycles,
        seed=BENCH_SEED,
    )


@pytest.fixture(scope="session")
def base_result():
    """The Section 3.1 base experiment, shared by the Fig. 2-4 benchmarks."""
    return run_study(base_experiment_config(bench_cycles()))


@pytest.fixture(scope="session")
def base_config():
    return base_experiment_config(bench_cycles())


@pytest.fixture(scope="session")
def node_study(base_config):
    """The Table 1 sweep, shared by the Table 1 and Fig. 5 benchmarks."""
    from repro.simulation import sweep_node_counts

    return sweep_node_counts(base_config, node_sweep(), bench_repetitions())


@pytest.fixture(scope="session")
def interval_study(base_config):
    """The Table 2 sweep, shared by the Table 2 and Fig. 6 benchmarks."""
    from repro.simulation import sweep_interval_lengths

    return sweep_interval_lengths(base_config, interval_sweep(), bench_repetitions())
