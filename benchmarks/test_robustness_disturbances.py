"""Extension study: window robustness on truly non-dedicated resources.

The paper's experiments treat the published slot lists as firm; on real
non-dedicated nodes, local jobs keep arriving and preempt reservations.
This study replays each criterion's windows under a Poisson disturbance
model (see :mod:`repro.execution`) and measures how the *planned*
advantages survive:

* MinCost's windows sit on slow nodes for a long time — the largest
  node-hour exposure, hence the largest absolute delays;
* MinRunTime/MinFinish windows are compact and lose the least;
* the planned criterion ordering (finish times) is preserved under light
  disturbance.
"""

import numpy as np

from repro.analysis import render_table
from repro.core import AMP, MinCost, MinFinish, MinRunTime
from repro.execution import paper_disturbance_model, replay_execution
from repro.simulation.experiment import make_generator

SAMPLES = 20
# The shared paper-scale calibration — the same model the broker's live
# resilience layer injects from, so offline and online studies agree.
MODEL = paper_disturbance_model()

ALGORITHMS = (AMP(), MinFinish(), MinRunTime(), MinCost())


def test_robustness_under_disturbances(benchmark, base_config):
    generator = make_generator(base_config)
    job = base_config.base_job()
    rng = np.random.default_rng(77)

    delays = {algorithm.name: [] for algorithm in ALGORITHMS}
    slowdowns = {algorithm.name: [] for algorithm in ALGORITHMS}
    actual_finishes = {algorithm.name: [] for algorithm in ALGORITHMS}
    pools = [generator.generate().slot_pool() for _ in range(SAMPLES)]
    for pool in pools:
        for algorithm in ALGORITHMS:
            window = algorithm.select(job, pool)
            if window is None:
                continue
            report = replay_execution({"job": window}, MODEL, rng)
            outcome = report.jobs["job"]
            delays[algorithm.name].append(outcome.delay)
            slowdowns[algorithm.name].append(outcome.slowdown)
            actual_finishes[algorithm.name].append(outcome.actual_finish)

    window = benchmark(MinFinish().select, job, pools[0])
    assert window is not None

    rows = [
        [
            name,
            float(np.mean(delays[name])),
            float(np.mean(slowdowns[name])),
            float(np.mean(actual_finishes[name])),
        ]
        for name in delays
    ]
    print()
    print(
        render_table(
            ["algorithm", "mean delay", "mean slowdown", "actual finish"],
            rows,
            title=(
                f"Robustness under Poisson disturbances "
                f"(rate {MODEL.rate}/node/unit, {SAMPLES} environments)"
            ),
        )
    )

    # MinCost's long slow-node reservations absorb the most delay.
    assert np.mean(delays["MinCost"]) >= np.mean(delays["MinRunTime"])
    # The planned finish-time ordering survives light disturbance.
    assert np.mean(actual_finishes["MinFinish"]) < np.mean(
        actual_finishes["MinCost"]
    )
    # Nothing finishes earlier than planned.
    for values in delays.values():
        assert min(values) >= -1e-9
